#include "core/sink.h"

#include <algorithm>

namespace kplex {
namespace {

uint64_t HashPlex(std::span<const VertexId> plex) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (VertexId v : plex) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
  // Avalanche so that XOR aggregation mixes well.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

std::vector<std::vector<VertexId>> CollectingSink::SortedResults() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::vector<VertexId>> out = results_;
  std::sort(out.begin(), out.end());
  return out;
}

void HashingSink::Emit(std::span<const VertexId> plex) {
  hash_.fetch_xor(HashPlex(plex), std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

namespace {

// "a ranks strictly ahead of b" for top-K selection: larger size first,
// then the lexicographically smaller vertex list. Total order on
// distinct plexes, so the selected set is emission-order independent.
bool RanksAhead(const std::vector<VertexId>& a,
                const std::vector<VertexId>& b) {
  if (a.size() != b.size()) return a.size() > b.size();
  return a < b;
}

}  // namespace

void TopKSink::Emit(std::span<const VertexId> plex) {
  if (k_ == 0) return;
  std::vector<VertexId> candidate(plex.begin(), plex.end());
  std::lock_guard<std::mutex> lock(mutex_);
  if (heap_.size() < k_) {
    heap_.push_back(std::move(candidate));
    std::push_heap(heap_.begin(), heap_.end(), RanksAhead);
    return;
  }
  // heap_.front() is the worst kept plex; replace it only when the
  // candidate ranks strictly ahead of it.
  if (RanksAhead(candidate, heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), RanksAhead);
    heap_.back() = std::move(candidate);
    std::push_heap(heap_.begin(), heap_.end(), RanksAhead);
  }
}

std::vector<std::vector<VertexId>> TopKSink::Selected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::vector<VertexId>> out = heap_;
  std::sort(out.begin(), out.end(), RanksAhead);
  return out;
}

}  // namespace kplex
