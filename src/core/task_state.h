// Mutable state of one branch-and-bound node: the triple <P, C, X> plus
// the incrementally maintained |N(v) ∩ P| counts. States are copied when
// a branch forks (the include side) and when the parallel timeout rule
// re-packages a pending recursive call as a standalone task.

#ifndef KPLEX_CORE_TASK_STATE_H_
#define KPLEX_CORE_TASK_STATE_H_

#include <cstdint>
#include <vector>

#include "core/seed_graph.h"
#include "util/bitset.h"

namespace kplex {

struct TaskState {
  DynamicBitset p;  ///< current k-plex (subset of V_i)
  DynamicBitset c;  ///< candidate set (subset of V_i)
  DynamicBitset x;  ///< exclusive set (V_i and fringe vertices)
  /// dp[v] = |N(v) ∩ P| for every local vertex v.
  std::vector<uint16_t> dp;
  uint32_t p_size = 0;

  /// Creates the empty state sized for `sg`.
  static TaskState MakeEmpty(const SeedGraph& sg) {
    TaskState st;
    st.p.ResizeClear(sg.universe);
    st.c.ResizeClear(sg.universe);
    st.x.ResizeClear(sg.universe);
    st.dp.assign(sg.universe, 0);
    return st;
  }

  /// Moves v (a V_i vertex not yet in P) into P, updating counts.
  void AddToP(const SeedGraph& sg, uint32_t v) {
    p.Set(v);
    ++p_size;
    sg.adj.Row(v).ForEach([&](std::size_t u) { ++dp[u]; });
  }

  /// Non-neighbors of v inside P, counting v itself when v ∈ P
  /// (the paper's d-bar); same expression for members and outsiders.
  uint32_t NonNeighborsInP(uint32_t v) const { return p_size - dp[v]; }

  /// sup_P(v) = k - d̄_P(v) (Section 5, "support number").
  int32_t Support(uint32_t v, uint32_t k) const {
    return static_cast<int32_t>(k) - static_cast<int32_t>(NonNeighborsInP(v));
  }

  /// True iff P ∪ {v} is still a k-plex, given that P itself is one.
  /// `saturated` must hold exactly the P-members with d̄_P = k.
  bool CanAdd(const SeedGraph& sg, const DynamicBitset& saturated,
              uint32_t v, uint32_t k) const {
    if (dp[v] + k < p_size + 1) return false;  // v's own budget
    return saturated.IsSubsetOf(sg.adj.Row(v));
  }

  /// Fills `saturated` (resized to universe) with P-members of d̄_P = k.
  void ComputeSaturated(const SeedGraph& sg, uint32_t k,
                        DynamicBitset& saturated) const {
    saturated.ResizeClear(sg.universe);
    if (p_size < k) return;  // d̄_P <= |P| < k: nobody saturated
    p.ForEach([&](std::size_t u) {
      if (p_size - dp[u] == k) saturated.Set(u);
    });
  }
};

}  // namespace kplex

#endif  // KPLEX_CORE_TASK_STATE_H_
