// BranchEngine: the recursive branch-and-bound search of Algorithm 3,
// covering the paper's default scheme ("Ours": pivot re-picking from C
// plus Eq (3) upper-bound pruning), the "Ours_P" FaPlexen branching
// variant (Eq (4)-(6)), and the ablation configurations of Tables 5/6.
//
// One engine is constructed per (seed graph, task execution); scratch
// buffers are reused across the recursion, which never interleaves two
// computations. The optional per-task timeout implements the straggler
// decomposition of Section 6: once the deadline passes, pending
// recursive calls are re-packaged as standalone TaskStates and handed to
// the spawn callback instead of being executed inline.

#ifndef KPLEX_CORE_BRANCH_H_
#define KPLEX_CORE_BRANCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/bounds.h"
#include "core/counters.h"
#include "core/options.h"
#include "core/pivot.h"
#include "core/seed_graph.h"
#include "core/sink.h"
#include "core/task_state.h"
#include "util/timer.h"

namespace kplex {

class BranchEngine {
 public:
  using SpawnFn = std::function<void(TaskState&&)>;

  BranchEngine(const SeedGraph& sg, const EnumOptions& options,
               ResultSink& sink, AlgoCounters& counters);

  /// Enables timeout decomposition: recursive calls issued after
  /// `deadline_nanos` (WallTimer::NowNanos clock) are spawned through
  /// `spawn` instead of executed.
  void SetTaskTimeout(int64_t deadline_nanos, SpawnFn spawn) {
    deadline_nanos_ = deadline_nanos;
    spawn_ = std::move(spawn);
  }

  /// Enables a global soft deadline; when exceeded, the engine unwinds
  /// and `aborted()` turns true.
  void SetGlobalDeadline(int64_t deadline_nanos) {
    global_deadline_nanos_ = deadline_nanos;
  }

  bool aborted() const { return aborted_; }

  /// True when the abort was triggered by options.cancel (as opposed to
  /// the global deadline).
  bool cancelled() const { return cancelled_; }

  /// True when the engine stopped because options.max_results was hit.
  bool stopped_early() const { return stopped_early_; }

  /// Runs Algorithm 3 on `state` (consumed).
  void Run(TaskState& state);

 private:
  void Branch(TaskState& state);
  void BranchBinary(TaskState& state, uint32_t pivot, bool include_allowed);
  void BranchFaplexen(TaskState& state, uint32_t pivot);
  void Dispatch(TaskState& state);

  /// Moves vp from C into P and applies the R2 matrix row of vp to C and
  /// X (Theorems 5.14/5.15 via one AND, fringe bits unaffected).
  void PrepareInclude(TaskState& state, uint32_t vp);

  /// In-place saturation + budget filter of `set` w.r.t. state.p.
  void FilterSet(const TaskState& state, const DynamicBitset& saturated,
                 DynamicBitset& set);

  /// Maximality check of P ∪ C (Alg. 3 Line 12): does some x in X extend
  /// it? Uses the d_{P∪C} table of the last pivot selection.
  bool HasExtenderOfPc(const TaskState& state, const DynamicBitset& pc,
                       uint32_t pc_size);

  void EmitPlex(const DynamicBitset& members);

  bool TimeoutExpired() const {
    return spawn_ && WallTimer::NowNanos() > deadline_nanos_;
  }
  bool CheckGlobalDeadline();

  const SeedGraph& sg_;
  const EnumOptions& options_;
  ResultSink& sink_;
  AlgoCounters& counters_;
  PivotSelector pivot_;
  BoundScratch bound_scratch_;

  // Reusable scratch.
  DynamicBitset saturated_;
  DynamicBitset pc_;
  DynamicBitset sat_pc_;
  std::vector<uint32_t> ws_;
  std::vector<VertexId> emit_;

  int64_t deadline_nanos_ = 0;
  SpawnFn spawn_;
  int64_t global_deadline_nanos_ = 0;
  bool aborted_ = false;
  bool cancelled_ = false;
  bool stopped_early_ = false;
};

}  // namespace kplex

#endif  // KPLEX_CORE_BRANCH_H_
