#include "service/protocol.h"

#include <cctype>
#include <cstdio>
#include <functional>
#include <sstream>
#include <type_traits>
#include <utility>

#include "bench_common/table_printer.h"

namespace kplex {
namespace {

// ------------------------------------------------------- token utilities
// (the historical ServiceSession helpers, verbatim where it matters for
// error-string compatibility)

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

// Splits "key=value"; value empty when no '=' present.
std::pair<std::string, std::string> SplitKeyValue(const std::string& token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) return {token, ""};
  return {token.substr(0, eq), token.substr(eq + 1)};
}

StatusOr<uint64_t> ParseUint(const std::string& key, const std::string& value,
                             uint64_t max = UINT64_MAX) {
  // std::stoull accepts a sign and wraps negatives; digits only here.
  for (char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("malformed value for " + key + ": '" +
                                     value + "'");
    }
  }
  try {
    std::size_t used = 0;
    const unsigned long long parsed = std::stoull(value, &used);
    if (value.empty() || used != value.size() || parsed > max) {
      throw std::out_of_range(value);
    }
    return static_cast<uint64_t>(parsed);
  } catch (const std::exception&) {
    return Status::InvalidArgument("malformed value for " + key + ": '" +
                                   value + "' (expected 0.." +
                                   std::to_string(max) + ")");
  }
}

StatusOr<double> ParseDoubleValue(const std::string& key,
                                  const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    return Status::InvalidArgument("malformed value for " + key + ": '" +
                                   value + "'");
  }
}

/// Parses "B:E" into a half-open seed range; E may be the literal
/// "end" (= UINT32_MAX, "to the last seed").
Status ParseSeedRangeValue(const std::string& value, uint32_t* begin,
                           uint32_t* end) {
  const std::size_t colon = value.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "seed-range must be BEGIN:END (half-open; END may be 'end'), got '" +
        value + "'");
  }
  auto parsed_begin =
      ParseUint("seed-range", value.substr(0, colon), UINT32_MAX);
  if (!parsed_begin.ok()) return parsed_begin.status();
  const std::string end_token = value.substr(colon + 1);
  uint64_t parsed_end = UINT32_MAX;
  if (end_token != "end") {
    auto parsed = ParseUint("seed-range", end_token, UINT32_MAX);
    if (!parsed.ok()) return parsed.status();
    parsed_end = *parsed;
  }
  if (*parsed_begin > parsed_end) {
    return Status::InvalidArgument("seed-range begin must be <= end (got '" +
                                   value + "')");
  }
  *begin = static_cast<uint32_t>(*parsed_begin);
  *end = static_cast<uint32_t>(parsed_end);
  return Status::Ok();
}

/// Renders a seed range as "B:E" ("end" for the open upper bound).
std::string FormatSeedRangeValue(uint32_t begin, uint32_t end) {
  return std::to_string(begin) + ":" +
         (end == UINT32_MAX ? std::string("end") : std::to_string(end));
}

/// Parses the resume-token grammar "SEED:ORDINAL".
Status ParseCursorValue(const std::string& value, uint32_t* seed,
                        uint64_t* ordinal) {
  const std::size_t colon = value.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "cursor must be SEED:ORDINAL (the resume token a truncated run "
        "returned), got '" + value + "'");
  }
  auto parsed_seed = ParseUint("cursor", value.substr(0, colon), UINT32_MAX);
  if (!parsed_seed.ok()) return parsed_seed.status();
  auto parsed_ordinal = ParseUint("cursor", value.substr(colon + 1));
  if (!parsed_ordinal.ok()) return parsed_ordinal.status();
  *seed = static_cast<uint32_t>(*parsed_seed);
  *ordinal = *parsed_ordinal;
  return Status::Ok();
}

/// Cross-option validation shared by both codecs (the text filter
/// grammar and the framed min_size/max_size fields accumulate into the
/// same request fields).
Status CheckSelectionOptions(const QueryRequest& query) {
  if (query.filter_min_size > 0 && query.filter_max_size > 0 &&
      query.filter_min_size > query.filter_max_size) {
    return Status::InvalidArgument(
        "filter size>=" + std::to_string(query.filter_min_size) +
        " contradicts size<=" + std::to_string(query.filter_max_size));
  }
  return Status::Ok();
}

/// Parses the selection grammar "size>=S[,size<=T]" (terms in either
/// order) into the request's filter bounds.
Status ParseFilterValue(const std::string& value, QueryRequest* request) {
  if (value.empty()) {
    return Status::InvalidArgument(
        "filter must be size>=S or size<=T (comma-separated terms)");
  }
  std::size_t pos = 0;
  while (pos <= value.size()) {
    std::size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    const std::string term = value.substr(pos, comma - pos);
    uint64_t* slot = nullptr;
    if (term.rfind("size>=", 0) == 0) {
      slot = &request->filter_min_size;
    } else if (term.rfind("size<=", 0) == 0) {
      slot = &request->filter_max_size;
    } else {
      return Status::InvalidArgument("malformed filter term '" + term +
                                     "' (expected size>=S or size<=T)");
    }
    auto parsed = ParseUint("filter", term.substr(6));
    if (!parsed.ok()) return parsed.status();
    if (*parsed == 0) {
      return Status::InvalidArgument("filter size bound must be >= 1");
    }
    *slot = *parsed;
    pos = comma + 1;
  }
  return CheckSelectionOptions(*request);
}

/// Parses a 64-bit hex value with a required 0x prefix (the wire shape
/// of fingerprints and content hashes).
StatusOr<uint64_t> ParseHexU64(const std::string& key,
                               const std::string& value) {
  if (value.size() < 3 || value.size() > 18 || value[0] != '0' ||
      (value[1] != 'x' && value[1] != 'X')) {
    return Status::InvalidArgument("malformed value for " + key + ": '" +
                                   value + "' (expected 0xHEX)");
  }
  uint64_t parsed = 0;
  for (std::size_t i = 2; i < value.size(); ++i) {
    const char c = value[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') digit = static_cast<uint64_t>(c - 'A' + 10);
    else {
      return Status::InvalidArgument("malformed value for " + key + ": '" +
                                     value + "' (expected 0xHEX)");
    }
    parsed = (parsed << 4) | digit;
  }
  return parsed;
}

std::string HumanBytes(std::size_t bytes) {
  char buf[32];
  if (bytes >= (std::size_t{1} << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (std::size_t{1} << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

/// Shortest decimal that survives a parse round trip for the values the
/// protocol carries (option values, seconds).
std::string CompactDouble(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string HexFingerprint(uint64_t fingerprint) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

// ------------------------------------------------------ text query grammar

/// Parses "CMD NAME K Q [key=value ...]" (shared by mine and submit).
/// The usage/error strings are the historical ones, byte-for-byte.
StatusOr<QueryRequest> ParseQueryArgs(const std::vector<std::string>& args) {
  if (args.size() < 4) {
    return Status::InvalidArgument(
        "usage: " + args[0] +
        " NAME K Q [algo=...] [threads=N] [max-results=N] "
        "[time-limit=S] [tau-ms=T] [cache=on|off] [seed-range=B:E] "
        "[results=stream|count] [chunk=N] [filter=size>=S,size<=T] "
        "[contain=V] [top=K] [mode=enumerate|maximum] [cursor=S:O]");
  }
  QueryRequest request;
  request.graph = args[1];
  auto k = ParseUint("K", args[2], UINT32_MAX);
  if (!k.ok()) return k.status();
  auto q = ParseUint("Q", args[3], UINT32_MAX);
  if (!q.ok()) return q.status();
  request.k = static_cast<uint32_t>(*k);
  request.q = static_cast<uint32_t>(*q);

  for (std::size_t i = 4; i < args.size(); ++i) {
    const auto [key, value] = SplitKeyValue(args[i]);
    if (key == "algo") {
      auto algo = ParseQueryAlgo(value);
      if (!algo.ok()) return algo.status();
      request.algo = *algo;
    } else if (key == "threads") {
      auto parsed = ParseUint(key, value, UINT32_MAX);
      if (!parsed.ok()) return parsed.status();
      request.threads = static_cast<uint32_t>(*parsed);
    } else if (key == "max-results") {
      auto parsed = ParseUint(key, value);
      if (!parsed.ok()) return parsed.status();
      request.max_results = *parsed;
    } else if (key == "time-limit") {
      auto parsed = ParseDoubleValue(key, value);
      if (!parsed.ok()) return parsed.status();
      request.time_limit_seconds = *parsed;
    } else if (key == "tau-ms") {
      auto parsed = ParseDoubleValue(key, value);
      if (!parsed.ok()) return parsed.status();
      request.tau_ms = *parsed;
    } else if (key == "ctcp") {
      if (value != "on" && value != "off") {
        return Status::InvalidArgument("ctcp must be on or off");
      }
      request.use_ctcp = value == "on";
    } else if (key == "cache") {
      if (value != "on" && value != "off") {
        return Status::InvalidArgument("cache must be on or off");
      }
      request.use_cache = value == "on";
    } else if (key == "seed-range") {
      KPLEX_RETURN_IF_ERROR(ParseSeedRangeValue(value, &request.seed_begin,
                                                &request.seed_end));
    } else if (key == "results") {
      if (value != "stream" && value != "count") {
        return Status::InvalidArgument("results must be stream or count");
      }
      request.collect_bodies = value == "stream";
    } else if (key == "chunk") {
      auto parsed = ParseUint(key, value, 65536);
      if (!parsed.ok()) return parsed.status();
      if (*parsed == 0) {
        return Status::InvalidArgument("chunk must be >= 1");
      }
      request.chunk_size = static_cast<uint32_t>(*parsed);
    } else if (key == "filter") {
      KPLEX_RETURN_IF_ERROR(ParseFilterValue(value, &request));
    } else if (key == "contain") {
      auto parsed = ParseUint(key, value, UINT32_MAX);
      if (!parsed.ok()) return parsed.status();
      request.has_contain = true;
      request.contain = static_cast<uint32_t>(*parsed);
    } else if (key == "top") {
      auto parsed = ParseUint(key, value);
      if (!parsed.ok()) return parsed.status();
      if (*parsed == 0) {
        return Status::InvalidArgument("top must be >= 1");
      }
      request.top_k = *parsed;
    } else if (key == "mode") {
      if (value != "enumerate" && value != "maximum") {
        return Status::InvalidArgument("mode must be enumerate or maximum");
      }
      request.maximum = value == "maximum";
    } else if (key == "cursor") {
      KPLEX_RETURN_IF_ERROR(ParseCursorValue(value, &request.cursor_seed,
                                             &request.cursor_ordinal));
      request.has_cursor = true;
    } else {
      return Status::InvalidArgument("unknown " + args[0] + " option '" +
                                     key + "'");
    }
  }
  KPLEX_RETURN_IF_ERROR(CheckSelectionOptions(request));
  return request;
}

std::string FormatQueryArgs(const std::string& cmd,
                            const QueryRequest& query) {
  std::string line = cmd + " " + query.graph + " " +
                     std::to_string(query.k) + " " + std::to_string(query.q);
  if (query.algo != QueryAlgo::kOurs) {
    line += std::string(" algo=") + QueryAlgoName(query.algo);
  }
  if (query.threads > 0) line += " threads=" + std::to_string(query.threads);
  if (query.max_results > 0) {
    line += " max-results=" + std::to_string(query.max_results);
  }
  if (query.time_limit_seconds > 0) {
    line += " time-limit=" + CompactDouble(query.time_limit_seconds);
  }
  if (query.tau_ms != QueryRequest{}.tau_ms) {
    line += " tau-ms=" + CompactDouble(query.tau_ms);
  }
  if (query.use_ctcp) line += " ctcp=on";
  if (!query.use_cache) line += " cache=off";
  if (query.HasSeedRange()) {
    line += " seed-range=" +
            FormatSeedRangeValue(query.seed_begin, query.seed_end);
  }
  if (query.collect_bodies) line += " results=stream";
  if (query.chunk_size > 0) line += " chunk=" + std::to_string(query.chunk_size);
  if (query.filter_min_size > 0 || query.filter_max_size > 0) {
    line += " filter=";
    if (query.filter_min_size > 0) {
      line += "size>=" + std::to_string(query.filter_min_size);
      if (query.filter_max_size > 0) line += ",";
    }
    if (query.filter_max_size > 0) {
      line += "size<=" + std::to_string(query.filter_max_size);
    }
  }
  if (query.has_contain) line += " contain=" + std::to_string(query.contain);
  if (query.top_k > 0) line += " top=" + std::to_string(query.top_k);
  if (query.maximum) line += " mode=maximum";
  if (query.has_cursor) {
    line += " cursor=" +
            FormatCursorValue(query.cursor_seed, query.cursor_ordinal);
  }
  return line;
}

// -------------------------------------------------- text result rendering

void WriteMineLine(std::ostream& out, const QueryRequest& query,
                   const QueryResult& result) {
  out << "mined " << DescribeQuery(query) << ": " << result.num_plexes
      << " plexes, max size " << result.max_plex_size << ", "
      << FormatSeconds(result.seconds) << "s";
  if (result.from_cache) out << " [cached]";
  if (result.reduction_precomputed && !result.from_cache) {
    out << " [precomputed reduction]";
  }
  if (result.timed_out) out << " [time limit hit]";
  if (result.stopped_early) out << " [result cap hit]";
  if (result.cancelled) out << " [cancelled]";
  if (result.has_cursor) {
    out << " [cursor "
        << FormatCursorValue(result.cursor_seed, result.cursor_ordinal)
        << "]";
  }
  out << "\n";
}

/// The terminal outcome of a job ("mined ..." / cancellation notice /
/// error line). `prefix` labels asynchronous results ("job 3: ").
void WriteJobOutcome(std::ostream& out, const JobInfo& info,
                     const std::string& prefix) {
  switch (info.state) {
    case JobState::kDone:
      out << prefix;
      WriteMineLine(out, info.request, info.result);
      break;
    case JobState::kCancelled:
      if (!info.started) {
        out << prefix << "cancelled " << DescribeQuery(info.request)
            << " before it started\n";
      } else {
        out << prefix;
        WriteMineLine(out, info.request, info.result);
      }
      break;
    case JobState::kFailed:
      out << prefix << "error: " << info.status.ToString() << "\n";
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      out << prefix << JobStateName(info.state) << "\n";  // unreachable
      break;
  }
}

/// Text rendering of a shard outcome: every number a coordinator (or a
/// human merging by hand) needs — the mergeable xor half, the composite
/// fingerprint, the seed-space size, and the admission hash.
void WriteShardOutcome(std::ostream& out, const ShardResultResponse& shard) {
  const JobInfo& info = shard.job;
  if (info.state == JobState::kFailed) {
    out << "error: " << info.status.ToString() << "\n";
    return;
  }
  if (info.state == JobState::kCancelled && !info.started) {
    out << "cancelled shard " << DescribeQuery(info.request)
        << " before it started\n";
    return;
  }
  out << "shard " << DescribeQuery(info.request) << ": "
      << info.result.num_plexes << " plexes, max size "
      << info.result.max_plex_size << ", xor "
      << HexFingerprint(info.result.fingerprint_xor) << ", fingerprint "
      << HexFingerprint(info.result.fingerprint) << ", total seeds "
      << info.result.total_seeds << ", hash "
      << HexFingerprint(shard.content_hash) << ", "
      << FormatSeconds(info.result.seconds) << "s";
  if (info.result.from_cache) out << " [cached]";
  if (info.result.timed_out) out << " [time limit hit]";
  if (info.result.stopped_early) out << " [result cap hit]";
  if (info.result.cancelled) out << " [cancelled]";
  if (info.result.yielded) {
    out << " [yielded covered=" << info.result.covered_begin << ":"
        << info.result.covered_end << "]";
  }
  out << "\n";
}

// The `store` status line, shared by the store verb and the stats
// rendering so operators read one shape everywhere.
void WriteStoreStatusLine(std::ostream& out, const StoreStatusInfo& info) {
  if (!info.enabled) {
    out << "store: off\n";
    return;
  }
  out << "store: " << info.entries << " entries, "
      << HumanBytes(static_cast<std::size_t>(info.bytes)) << " (budget ";
  if (info.byte_budget > 0) {
    out << HumanBytes(static_cast<std::size_t>(info.byte_budget));
  } else {
    out << "unlimited";
  }
  out << "), " << info.hits << " hits, " << info.misses << " misses, "
      << info.writes << " writes, " << info.evictions << " evictions, "
      << info.corrupt_entries << " corrupt\n";
}

constexpr const char kHelpText[] =
    "commands:\n"
    "  load NAME PATH        register + load a graph file\n"
    "  dataset NAME KEY      register + load a registry dataset\n"
    "  snapshot NAME PATH [precompute] [levels=C1,C2,...]\n"
    "                        write NAME as a binary v2 snapshot;\n"
    "                        precompute stores reduction sections\n"
    "  mine NAME K Q [algo=ours|ours_p|basic|listplex|fp]\n"
    "       [threads=N] [max-results=N] [time-limit=S] [tau-ms=T]\n"
    "       [cache=on|off] [ctcp=on|off] [results=stream|count]\n"
    "       [chunk=N] [filter=size>=S,size<=T] [contain=V] [top=K]\n"
    "       [mode=enumerate|maximum] [cursor=S:O]\n"
    "                        results=stream delivers the plex bodies in\n"
    "                        bounded result chunks before the summary;\n"
    "                        a max-results-truncated sequential run\n"
    "                        reports a cursor to resume from\n"
    "  submit NAME K Q [...] run a mine asynchronously; prints a\n"
    "                        job id immediately\n"
    "  mineshard NAME K Q [seed-range=B:E] [hash=0xH] [...]\n"
    "                        mine one shard of the seed space; hash=\n"
    "                        refuses a mismatched snapshot (sharding)\n"
    "  plan NAME K Q [ctcp]  per-seed cost-estimate probe (degeneracy-\n"
    "                        order degrees + coreness); no enumeration\n"
    "  shardsubmit NAME K Q [seed-range=B:E] [hash=0xH] [...]\n"
    "                        asynchronous mineshard: admission check,\n"
    "                        then a job id immediately (work-stealing)\n"
    "  shardwait ID          block until shard job ID is terminal and\n"
    "                        print its shard result\n"
    "  shardstop ID          ask shard job ID to yield at the next seed\n"
    "                        boundary (its result covers a prefix)\n"
    "  register HOST:PORT    join a coordinator's worker pool\n"
    "  heartbeat ID          refresh worker ID's liveness (coordinator)\n"
    "  drain ID              stop scheduling onto worker ID (coordinator)\n"
    "  workers               the coordinator's worker-pool table\n"
    "  cancel ID             cancel a queued or running job\n"
    "  jobs                  status of every submitted job\n"
    "  wait [ID]             block until job ID (or all jobs) done\n"
    "  stats                 catalog + cache + dispatcher stats\n"
    "  metrics [format=table|prom]\n"
    "                        scrape the process metrics registry\n"
    "  evict NAME            drop the resident copy\n"
    "  store [evict]         durable result-store status; `store evict`\n"
    "                        deletes every persisted entry\n"
    "  hello [proto=N] [mode=text|framed]\n"
    "                        negotiate the protocol version; mode=framed\n"
    "                        switches to the JSON-lines encoding\n"
    "  quit                  end the session\n";

// ----------------------------------------------------------- JSON writing

void JsonEscapeTo(std::string& out, const std::string& value) {
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Appends `"key":` + primitive values to a flat JSON object/array under
/// construction. Keeps the codec dependency-free.
class JsonWriter {
 public:
  void BeginObject() { Separate(); out_ += '{'; fresh_ = true; }
  void EndObject() { out_ += '}'; fresh_ = false; }
  void BeginArray(const std::string& key) {
    Key(key);
    out_ += '[';
    fresh_ = true;
  }
  void BeginObjectValue(const std::string& key) {
    Key(key);
    out_ += '{';
    fresh_ = true;
  }
  void BeginArrayElementObject() { Separate(); out_ += '{'; fresh_ = true; }
  void BeginArrayElementArray() { Separate(); out_ += '['; fresh_ = true; }
  void EndArray() { out_ += ']'; fresh_ = false; }

  void Add(const std::string& key, const std::string& value) {
    Key(key);
    out_ += '"';
    JsonEscapeTo(out_, value);
    out_ += '"';
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string(value));
  }
  // One template for every unsigned integer width: uint32_t, uint64_t,
  // and std::size_t (which is a third distinct type on LP64 macOS —
  // fixed-width overloads would be ambiguous there). bool prefers its
  // exact non-template overload below.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  void Add(const std::string& key, T value) {
    Key(key);
    out_ += std::to_string(static_cast<uint64_t>(value));
  }
  void Add(const std::string& key, double value) {
    Key(key);
    out_ += CompactDouble(value);
  }
  void Add(const std::string& key, bool value) {
    Key(key);
    out_ += value ? "true" : "false";
  }
  // Exact overload so negative gauge values survive (the integral
  // template above funnels through uint64_t).
  void Add(const std::string& key, int64_t value) {
    Key(key);
    out_ += std::to_string(value);
  }
  // Same template shape as Add: one overload for every unsigned
  // integer width, so uint32_t callers do not see an ambiguity between
  // uint64_t and double.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  void AddElement(T value) {
    Separate();
    out_ += std::to_string(static_cast<uint64_t>(value));
  }
  void AddElement(double value) {
    Separate();
    out_ += CompactDouble(value);
  }

  const std::string& str() const { return out_; }

 private:
  void Key(const std::string& key) {
    Separate();
    out_ += '"';
    JsonEscapeTo(out_, key);
    out_ += "\":";
  }
  void Separate() {
    if (!fresh_ && !out_.empty() && out_.back() != '{' &&
        out_.back() != '[') {
      out_ += ',';
    }
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
};

// ----------------------------------------------------------- JSON parsing

/// Minimal JSON value for the framed codec. Integers that fit uint64
/// stay exact (job ids, max_results, fingerprints); everything else
/// numeric is a double.
struct JsonValue {
  enum class Kind { kNull, kBool, kUint, kDouble, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  uint64_t uint_value = 0;
  double double_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Recursive-descent JSON parser: full string escapes, a depth cap
/// against crafted nesting, and error positions. Crash-free on any
/// byte sequence by construction (no recursion past kMaxDepth, no
/// unchecked indexing).
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    auto value = ParseValue(0);
    if (!value.ok()) return value.status();
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing bytes after the JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 32;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("malformed frame: " + what +
                                   " at byte " + std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return value;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected a string key");
      }
      auto key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Error("expected ':' after key");
      auto element = ParseValue(depth + 1);
      if (!element.ok()) return element.status();
      value.object.emplace_back(key->string_value, *std::move(element));
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return value;
    for (;;) {
      auto element = ParseValue(depth + 1);
      if (!element.ok()) return element.status();
      value.array.push_back(*std::move(element));
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<JsonValue> ParseString() {
    ++pos_;  // '"'
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control byte in string");
      }
      if (c != '\\') {
        value.string_value += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': value.string_value += '"'; break;
        case '\\': value.string_value += '\\'; break;
        case '/': value.string_value += '/'; break;
        case 'n': value.string_value += '\n'; break;
        case 'r': value.string_value += '\r'; break;
        case 't': value.string_value += '\t'; break;
        case 'b': value.string_value += '\b'; break;
        case 'f': value.string_value += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape digit");
          }
          // BMP code points only (no surrogate-pair recombination);
          // enough for the protocol's field values.
          if (code < 0x80) {
            value.string_value += static_cast<char>(code);
          } else if (code < 0x800) {
            value.string_value += static_cast<char>(0xC0 | (code >> 6));
            value.string_value += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            value.string_value += static_cast<char>(0xE0 | (code >> 12));
            value.string_value +=
                static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            value.string_value += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown string escape");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseBool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.bool_value = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.bool_value = false;
      pos_ += 5;
      return value;
    }
    return Error("expected true/false");
  }

  StatusOr<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return Error("expected null");
  }

  StatusOr<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool fractional = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        fractional = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    JsonValue value;
    if (!fractional && token[0] != '-') {
      uint64_t parsed = 0;
      bool overflow = token.empty();
      for (char c : token) {
        const uint64_t digit = static_cast<uint64_t>(c - '0');
        if (parsed > (UINT64_MAX - digit) / 10) {
          overflow = true;
          break;
        }
        parsed = parsed * 10 + digit;
      }
      if (!overflow) {
        value.kind = JsonValue::Kind::kUint;
        value.uint_value = parsed;
        return value;
      }
    }
    try {
      std::size_t used = 0;
      value.double_value = std::stod(token, &used);
      if (used != token.size()) throw std::invalid_argument(token);
    } catch (const std::exception&) {
      return Error("malformed number '" + token + "'");
    }
    value.kind = JsonValue::Kind::kDouble;
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --------------------------------------------- framed field extraction

Status UnknownField(const std::string& cmd, const std::string& key) {
  return Status::InvalidArgument("unknown field '" + key + "' for '" + cmd +
                                 "'");
}

Status WrongType(const std::string& key, const char* expected) {
  return Status::InvalidArgument("field '" + key + "' must be " + expected);
}

StatusOr<std::string> GetString(const JsonValue& value,
                                const std::string& key) {
  if (value.kind != JsonValue::Kind::kString) {
    return WrongType(key, "a string");
  }
  return value.string_value;
}

StatusOr<uint64_t> GetUint(const JsonValue& value, const std::string& key,
                           uint64_t max = UINT64_MAX) {
  if (value.kind != JsonValue::Kind::kUint || value.uint_value > max) {
    return WrongType(key, ("an unsigned integer <= " + std::to_string(max))
                              .c_str());
  }
  return value.uint_value;
}

StatusOr<double> GetDouble(const JsonValue& value, const std::string& key) {
  if (value.kind == JsonValue::Kind::kUint) {
    return static_cast<double>(value.uint_value);
  }
  if (value.kind == JsonValue::Kind::kDouble) return value.double_value;
  return WrongType(key, "a number");
}

StatusOr<bool> GetBool(const JsonValue& value, const std::string& key) {
  if (value.kind != JsonValue::Kind::kBool) {
    return WrongType(key, "a boolean");
  }
  return value.bool_value;
}

// ------------------------------------------------- framed job rendering

void WriteQueryObject(JsonWriter& json, const std::string& key,
                      const QueryRequest& query) {
  json.BeginObjectValue(key);
  json.Add("graph", query.graph);
  json.Add("k", query.k);
  json.Add("q", query.q);
  json.Add("algo", QueryAlgoName(query.algo));
  if (query.threads > 0) json.Add("threads", query.threads);
  if (query.max_results > 0) json.Add("max_results", query.max_results);
  if (query.time_limit_seconds > 0) {
    json.Add("time_limit", query.time_limit_seconds);
  }
  if (query.tau_ms != QueryRequest{}.tau_ms) json.Add("tau_ms", query.tau_ms);
  if (query.use_ctcp) json.Add("ctcp", true);
  if (!query.use_cache) json.Add("cache", false);
  if (query.HasSeedRange()) {
    json.Add("seed_begin", query.seed_begin);
    json.Add("seed_end", query.seed_end);
  }
  json.EndObject();
}

void WriteJobFields(JsonWriter& json, const JobInfo& info) {
  json.Add("job", info.id);
  WriteQueryObject(json, "query", info.request);
  json.Add("state", JobStateName(info.state));
  json.Add("started", info.started);
  const bool has_result =
      info.state == JobState::kDone ||
      (info.state == JobState::kCancelled && info.started);
  if (has_result) {
    json.Add("plexes", info.result.num_plexes);
    json.Add("max_size", info.result.max_plex_size);
    json.Add("fingerprint", HexFingerprint(info.result.fingerprint));
    json.Add("seconds", info.result.seconds);
    json.Add("compute_seconds", info.result.compute_seconds);
    json.Add("cached", info.result.from_cache);
    json.Add("precomputed", info.result.reduction_precomputed);
    json.Add("timed_out", info.result.timed_out);
    json.Add("stopped_early", info.result.stopped_early);
    json.Add("cancelled", info.result.cancelled);
    if (info.result.plexes != nullptr) {
      json.Add("bodies", info.result.plexes->size());
    }
    if (info.result.has_cursor) {
      json.Add("cursor", FormatCursorValue(info.result.cursor_seed,
                                           info.result.cursor_ordinal));
    }
  }
  if (info.state == JobState::kFailed) {
    json.BeginObjectValue("error");
    json.Add("code", StatusCodeName(info.status.code()));
    json.Add("message", info.status.message());
    json.EndObject();
  }
}

}  // namespace

// ----------------------------------------------------------- public API

const char* WireModeName(WireMode mode) {
  switch (mode) {
    case WireMode::kText: return "text";
    case WireMode::kFramed: return "framed";
  }
  return "?";
}

StatusOr<WireMode> ParseWireMode(const std::string& name) {
  if (name == "text") return WireMode::kText;
  if (name == "framed") return WireMode::kFramed;
  return Status::InvalidArgument("mode must be text or framed, got '" + name +
                                 "'");
}

std::string DescribeQuery(const QueryRequest& query) {
  return query.graph + " k=" + std::to_string(query.k) +
         " q=" + std::to_string(query.q) + " algo=" +
         QueryAlgoName(query.algo) +
         (query.HasSeedRange()
              ? " seeds=" +
                    FormatSeedRangeValue(query.seed_begin, query.seed_end)
              : "");
}

StatusOr<SeedRange> ParseSeedRangeText(const std::string& value) {
  SeedRange range;
  KPLEX_RETURN_IF_ERROR(ParseSeedRangeValue(value, &range.begin, &range.end));
  return range;
}

bool IsBlankOrComment(const std::string& line) {
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    return c == '#';
  }
  return true;
}

// ------------------------------------------------------------- text parse

StatusOr<Request> ParseTextRequest(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0][0] == '#') {
    return Status::InvalidArgument("blank or comment line");
  }
  const std::string& cmd = tokens[0];
  Request request;

  if (cmd == "quit" || cmd == "exit") {
    request.payload = QuitRequest{};
    return request;
  }
  if (cmd == "hello") {
    HelloRequest hello;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const auto [key, value] = SplitKeyValue(tokens[i]);
      if (key == "proto") {
        auto parsed = ParseUint(key, value, UINT32_MAX);
        if (!parsed.ok()) return parsed.status();
        hello.version = static_cast<uint32_t>(*parsed);
      } else if (key == "mode") {
        auto mode = ParseWireMode(value);
        if (!mode.ok()) return mode.status();
        hello.mode = *mode;
      } else {
        return Status::InvalidArgument(
            "usage: hello [proto=N] [mode=text|framed]");
      }
    }
    request.payload = hello;
    return request;
  }
  if (cmd == "load") {
    if (tokens.size() != 3) {
      return Status::InvalidArgument("usage: load NAME PATH");
    }
    request.payload = LoadRequest{tokens[1], tokens[2]};
    return request;
  }
  if (cmd == "dataset") {
    if (tokens.size() != 3) {
      return Status::InvalidArgument("usage: dataset NAME KEY");
    }
    request.payload = DatasetRequest{tokens[1], tokens[2]};
    return request;
  }
  if (cmd == "snapshot") {
    if (tokens.size() < 3) {
      return Status::InvalidArgument(
          "usage: snapshot NAME PATH [precompute] [levels=C1,C2,...]");
    }
    SnapshotRequest snapshot;
    snapshot.name = tokens[1];
    snapshot.path = tokens[2];
    for (std::size_t i = 3; i < tokens.size(); ++i) {
      const auto [key, value] = SplitKeyValue(tokens[i]);
      if (key == "precompute" && value.empty()) {
        snapshot.include_precompute = true;
      } else if (key == "levels") {
        auto parsed = ParseCoreLevelList(value);
        if (!parsed.ok()) return parsed.status();
        snapshot.include_precompute = true;
        snapshot.core_mask_levels = *std::move(parsed);
      } else {
        return Status::InvalidArgument("unknown snapshot option '" +
                                       tokens[i] + "'");
      }
    }
    request.payload = std::move(snapshot);
    return request;
  }
  if (cmd == "mine" || cmd == "submit") {
    auto query = ParseQueryArgs(tokens);
    if (!query.ok()) return query.status();
    if (cmd == "mine") {
      request.payload = MineRequest{*std::move(query)};
    } else {
      request.payload = SubmitRequest{*std::move(query)};
    }
    return request;
  }
  if (cmd == "mineshard" || cmd == "shardsubmit") {
    // Split off the shard-only hash= option, then reuse the shared
    // query grammar (which handles seed-range=).
    uint64_t expected_hash = 0;
    std::vector<std::string> query_tokens;
    query_tokens.reserve(tokens.size());
    for (const std::string& token : tokens) {
      const auto [key, value] = SplitKeyValue(token);
      if (key == "hash" && !value.empty()) {
        auto parsed = ParseHexU64(key, value);
        if (!parsed.ok()) return parsed.status();
        expected_hash = *parsed;
      } else {
        query_tokens.push_back(token);
      }
    }
    auto query = ParseQueryArgs(query_tokens);
    if (!query.ok()) return query.status();
    if (cmd == "mineshard") {
      request.payload = MineShardRequest{*std::move(query), expected_hash};
    } else {
      request.payload = ShardSubmitRequest{*std::move(query), expected_hash};
    }
    return request;
  }
  if (cmd == "plan") {
    if (tokens.size() < 4 || tokens.size() > 5 ||
        (tokens.size() == 5 && tokens[4] != "ctcp")) {
      return Status::InvalidArgument("usage: plan NAME K Q [ctcp]");
    }
    PlanRequest plan;
    plan.graph = tokens[1];
    auto k = ParseUint("K", tokens[2], UINT32_MAX);
    if (!k.ok()) return k.status();
    auto q = ParseUint("Q", tokens[3], UINT32_MAX);
    if (!q.ok()) return q.status();
    plan.k = static_cast<uint32_t>(*k);
    plan.q = static_cast<uint32_t>(*q);
    plan.use_ctcp = tokens.size() == 5;
    request.payload = std::move(plan);
    return request;
  }
  if (cmd == "shardwait" || cmd == "shardstop") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument("usage: " + cmd + " ID");
    }
    auto id = ParseUint("ID", tokens[1]);
    if (!id.ok()) return id.status();
    if (cmd == "shardwait") {
      request.payload = ShardWaitRequest{*id};
    } else {
      request.payload = ShardStopRequest{*id};
    }
    return request;
  }
  if (cmd == "register") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument("usage: register HOST:PORT");
    }
    request.payload = RegisterRequest{tokens[1]};
    return request;
  }
  if (cmd == "heartbeat" || cmd == "drain") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument("usage: " + cmd + " ID");
    }
    auto id = ParseUint("ID", tokens[1]);
    if (!id.ok()) return id.status();
    if (cmd == "heartbeat") {
      request.payload = HeartbeatRequest{*id};
    } else {
      request.payload = DrainRequest{*id};
    }
    return request;
  }
  if (cmd == "workers") {
    request.payload = WorkersRequest{};
    return request;
  }
  if (cmd == "cancel") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument("usage: cancel ID");
    }
    auto id = ParseUint("ID", tokens[1]);
    if (!id.ok()) return id.status();
    request.payload = CancelRequest{*id};
    return request;
  }
  if (cmd == "jobs") {
    request.payload = JobsRequest{};
    return request;
  }
  if (cmd == "wait") {
    if (tokens.size() > 2) {
      return Status::InvalidArgument("usage: wait [ID]");
    }
    WaitRequest wait;
    if (tokens.size() == 2) {
      auto id = ParseUint("ID", tokens[1]);
      if (!id.ok()) return id.status();
      wait.job = *id;
    }
    request.payload = wait;
    return request;
  }
  if (cmd == "stats") {
    request.payload = StatsRequest{};
    return request;
  }
  if (cmd == "metrics") {
    MetricsRequest metrics;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      if (tokens[i].rfind("format=", 0) == 0) {
        metrics.format = tokens[i].substr(7);
      } else {
        return Status::InvalidArgument(
            "usage: metrics [format=table|prom]");
      }
    }
    request.payload = std::move(metrics);
    return request;
  }
  if (cmd == "evict") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument("usage: evict NAME");
    }
    request.payload = EvictRequest{tokens[1]};
    return request;
  }
  if (cmd == "store") {
    StoreRequest store;
    if (tokens.size() == 2 && tokens[1] == "evict") {
      store.evict = true;
    } else if (tokens.size() != 1) {
      return Status::InvalidArgument("usage: store [evict]");
    }
    request.payload = store;
    return request;
  }
  if (cmd == "help") {
    request.payload = HelpRequest{};
    return request;
  }
  return Status::InvalidArgument("unknown command '" + cmd +
                                 "' (try 'help')");
}

// ------------------------------------------------------------ text format

std::string FormatTextRequest(const Request& request) {
  struct Visitor {
    std::string operator()(const HelloRequest& hello) const {
      std::string line = "hello proto=" + std::to_string(hello.version);
      if (hello.mode.has_value()) {
        line += std::string(" mode=") + WireModeName(*hello.mode);
      }
      return line;
    }
    std::string operator()(const LoadRequest& load) const {
      return "load " + load.name + " " + load.path;
    }
    std::string operator()(const DatasetRequest& dataset) const {
      return "dataset " + dataset.name + " " + dataset.key;
    }
    std::string operator()(const SnapshotRequest& snapshot) const {
      std::string line = "snapshot " + snapshot.name + " " + snapshot.path;
      if (!snapshot.core_mask_levels.empty()) {
        line += " levels=";
        for (std::size_t i = 0; i < snapshot.core_mask_levels.size(); ++i) {
          if (i > 0) line += ",";
          line += std::to_string(snapshot.core_mask_levels[i]);
        }
      } else if (snapshot.include_precompute) {
        line += " precompute";
      }
      return line;
    }
    std::string operator()(const MineRequest& mine) const {
      return FormatQueryArgs("mine", mine.query);
    }
    std::string operator()(const SubmitRequest& submit) const {
      return FormatQueryArgs("submit", submit.query);
    }
    std::string operator()(const MineShardRequest& shard) const {
      std::string line = FormatQueryArgs("mineshard", shard.query);
      if (shard.expected_hash != 0) {
        line += " hash=" + HexFingerprint(shard.expected_hash);
      }
      return line;
    }
    std::string operator()(const PlanRequest& plan) const {
      std::string line = "plan " + plan.graph + " " +
                         std::to_string(plan.k) + " " +
                         std::to_string(plan.q);
      if (plan.use_ctcp) line += " ctcp";
      return line;
    }
    std::string operator()(const ShardSubmitRequest& shard) const {
      std::string line = FormatQueryArgs("shardsubmit", shard.query);
      if (shard.expected_hash != 0) {
        line += " hash=" + HexFingerprint(shard.expected_hash);
      }
      return line;
    }
    std::string operator()(const ShardWaitRequest& wait) const {
      return "shardwait " + std::to_string(wait.job);
    }
    std::string operator()(const ShardStopRequest& stop) const {
      return "shardstop " + std::to_string(stop.job);
    }
    std::string operator()(const RegisterRequest& reg) const {
      return "register " + reg.endpoint;
    }
    std::string operator()(const HeartbeatRequest& beat) const {
      return "heartbeat " + std::to_string(beat.worker);
    }
    std::string operator()(const DrainRequest& drain) const {
      return "drain " + std::to_string(drain.worker);
    }
    std::string operator()(const WorkersRequest&) const { return "workers"; }
    std::string operator()(const CancelRequest& cancel) const {
      return "cancel " + std::to_string(cancel.job);
    }
    std::string operator()(const JobsRequest&) const { return "jobs"; }
    std::string operator()(const WaitRequest& wait) const {
      return wait.job.has_value() ? "wait " + std::to_string(*wait.job)
                                  : "wait";
    }
    std::string operator()(const StatsRequest&) const { return "stats"; }
    std::string operator()(const MetricsRequest& metrics) const {
      return metrics.format.empty() ? "metrics"
                                    : "metrics format=" + metrics.format;
    }
    std::string operator()(const EvictRequest& evict) const {
      return "evict " + evict.name;
    }
    std::string operator()(const StoreRequest& store) const {
      return store.evict ? "store evict" : "store";
    }
    std::string operator()(const HelpRequest&) const { return "help"; }
    std::string operator()(const QuitRequest&) const { return "quit"; }
  };
  return std::visit(Visitor{}, request.payload);
}

void FormatTextResponse(const Response& response, std::ostream& out) {
  struct Visitor {
    std::ostream& out;

    void operator()(const HelloResponse& hello) const {
      // A hello rendered by the text formatter means the session is in
      // (or just switched to) text mode.
      out << "hello proto=" << hello.version << " mode="
          << WireModeName(hello.mode.value_or(WireMode::kText)) << "\n";
    }
    void operator()(const LoadResponse& loaded) const {
      out << "loaded " << loaded.name << ": " << loaded.num_vertices
          << " vertices, " << loaded.num_edges << " edges (";
      if (loaded.dataset_key.empty()) {
        out << FormatSeconds(loaded.load_seconds) << "s";
      } else {
        out << "dataset " << loaded.dataset_key;
      }
      out << ")\n";
    }
    void operator()(const SnapshotResponse& snapshot) const {
      out << "snapshot " << snapshot.name << " -> " << snapshot.path
          << (snapshot.with_precompute ? " (with precompute sections)" : "")
          << "\n";
    }
    void operator()(const MineResponse& mine) const {
      WriteJobOutcome(out, mine.job, "");
    }
    void operator()(const SubmitResponse& submit) const {
      out << "job " << submit.job << " submitted: mine "
          << DescribeQuery(submit.query) << "\n";
    }
    void operator()(const ShardResultResponse& shard) const {
      WriteShardOutcome(out, shard);
    }
    void operator()(const PlanResponse& plan) const {
      out << "plan " << plan.graph << ": " << plan.total_seeds
          << " seeds, degeneracy " << plan.degeneracy << ", hash "
          << HexFingerprint(plan.content_hash) << ", "
          << FormatSeconds(plan.seconds) << "s";
      if (plan.precomputed) out << " [precomputed reduction]";
      out << "\n";
      // One line per seed keeps the text rendering greppable; the
      // framed codec carries the arrays wholesale.
      for (std::size_t i = 0; i < plan.degrees.size(); ++i) {
        out << "seed " << i << " degree=" << plan.degrees[i]
            << " coreness=" << plan.coreness[i] << "\n";
      }
    }
    void operator()(const ShardSubmitResponse& shard) const {
      out << "shard job " << shard.job << " submitted, hash "
          << HexFingerprint(shard.content_hash) << "\n";
    }
    void operator()(const ShardStopResponse& stop) const {
      out << "yield requested for job " << stop.job << "\n";
    }
    void operator()(const WorkerAckResponse& ack) const {
      out << "worker " << ack.worker << " " << ack.state << "\n";
    }
    void operator()(const WorkersResponse& workers) const {
      TablePrinter table({"id", "endpoint", "state", "done", "failed"});
      for (const WorkerInfo& info : workers.workers) {
        table.AddRow({std::to_string(info.id), info.endpoint, info.state,
                      FormatCount(info.chunks_done),
                      FormatCount(info.chunks_failed)});
      }
      table.Print(out);
    }
    void operator()(const ResultChunkResponse& chunk) const {
      out << "chunk " << chunk.seq;
      if (chunk.last) out << " last";
      out << ":";
      for (std::size_t i = 0; i < chunk.plexes.size(); ++i) {
        out << (i == 0 ? " " : " | ");
        const std::vector<VertexId>& plex = chunk.plexes[i];
        for (std::size_t j = 0; j < plex.size(); ++j) {
          if (j > 0) out << " ";
          out << plex[j];
        }
      }
      out << "\n";
    }
    void operator()(const CancelResponse& cancel) const {
      out << "cancel requested for job " << cancel.job << "\n";
    }
    void operator()(const JobsResponse& jobs) const {
      TablePrinter table({"id", "query", "state", "plexes", "seconds"});
      for (const JobInfo& info : jobs.jobs) {
        const bool has_result =
            info.state == JobState::kDone ||
            (info.state == JobState::kCancelled && info.started);
        table.AddRow({std::to_string(info.id), DescribeQuery(info.request),
                      JobStateName(info.state),
                      has_result ? FormatCount(info.result.num_plexes) : "-",
                      has_result ? FormatSeconds(info.result.seconds) : "-"});
      }
      table.Print(out);
    }
    void operator()(const WaitResponse& wait) const {
      WriteJobOutcome(out, wait.job,
                      "job " + std::to_string(wait.job.id) + ": ");
    }
    void operator()(const WaitAllResponse& all) const {
      out << "all jobs finished: " << all.counts.done << " done, "
          << all.counts.cancelled << " cancelled, " << all.counts.failed
          << " failed\n";
    }
    void operator()(const StatsResponse& stats) const {
      TablePrinter graphs({"name", "source", "resident", "vertices", "edges",
                           "owned", "mapped", "precompute", "hash",
                           "loads"});
      for (const auto& info : stats.graphs) {
        graphs.AddRow({info.name, info.source, info.resident ? "yes" : "no",
                       FormatCount(info.num_vertices),
                       FormatCount(info.num_edges),
                       HumanBytes(info.memory_bytes),
                       HumanBytes(info.mapped_bytes), info.precompute,
                       info.content_hash != 0
                           ? HexFingerprint(info.content_hash)
                           : "-",
                       FormatCount(info.loads)});
      }
      graphs.Print(out);
      out << "resident: " << HumanBytes(stats.resident_bytes) << " owned";
      if (stats.memory_budget_bytes > 0) {
        out << " / budget " << HumanBytes(stats.memory_budget_bytes);
      }
      out << " + " << HumanBytes(stats.mapped_resident_bytes)
          << " mapped (zero-copy, budget-exempt)\n";
      out << "result cache: " << stats.cache.entries << "/"
          << stats.cache.capacity << " entries, " << stats.cache.hits
          << " hits, " << stats.cache.misses << " misses\n";
      out << "dispatcher: " << stats.workers << " worker(s), "
          << stats.jobs.queued << " queued, " << stats.jobs.running
          << " running, "
          << (stats.jobs.done + stats.jobs.cancelled + stats.jobs.failed)
          << " finished\n";
      WriteStoreStatusLine(out, stats.store);
    }
    void operator()(const MetricsResponse& metrics) const {
      // Deterministic framing for the multi-line body: a header line
      // that announces exactly how many lines follow, so text clients
      // (tools/metrics_smoke.py, kplex_cli metrics) can read the whole
      // scrape without sentinels.
      if (metrics.format == "prom") {
        const std::string body = RenderMetricsPrometheus(metrics.snapshot);
        std::size_t lines = 0;
        for (char c : body) {
          if (c == '\n') ++lines;
        }
        out << "metrics prom " << lines << " lines\n" << body;
      } else {
        out << "metrics " << metrics.snapshot.SeriesCount() << " series\n"
            << RenderMetricsText(metrics.snapshot);
      }
    }
    void operator()(const EvictResponse& evict) const {
      out << "evicted " << evict.name << "\n";
    }
    void operator()(const StoreResponse& store) const {
      if (store.evicted) {
        out << "store evicted: " << store.evicted_entries << " entries, "
            << HumanBytes(static_cast<std::size_t>(store.evicted_bytes))
            << " freed\n";
      }
      WriteStoreStatusLine(out, store.info);
    }
    void operator()(const HelpResponse&) const { out << kHelpText; }
    void operator()(const ByeResponse&) const {}  // quit prints nothing
    void operator()(const ErrorResponse& error) const {
      out << "error: " << error.status.ToString() << "\n";
    }
  };
  std::visit(Visitor{out}, response.payload);
}

// ----------------------------------------------------------- framed parse

StatusOr<Request> ParseFramedRequest(const std::string& line,
                                     uint64_t* error_id) {
  if (error_id != nullptr) *error_id = 0;
  auto parsed = JsonParser(line).Parse();
  if (!parsed.ok()) return parsed.status();
  if (parsed->kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument(
        "malformed frame: expected a JSON object");
  }
  const JsonValue& frame = *parsed;

  Request request;
  const JsonValue* id = frame.Find("id");
  if (id != nullptr) {
    auto value = GetUint(*id, "id");
    if (!value.ok()) return value.status();
    request.id = *value;
    // Publish the id before command validation: a rejected frame still
    // gets a correlated error response.
    if (error_id != nullptr) *error_id = request.id;
  }
  const JsonValue* cmd_field = frame.Find("cmd");
  if (cmd_field == nullptr) {
    return Status::InvalidArgument("frame is missing the 'cmd' field");
  }
  auto cmd = GetString(*cmd_field, "cmd");
  if (!cmd.ok()) return cmd.status();

  // Walks the remaining fields through a per-command handler; any key
  // the handler does not recognize is a typo the client should hear
  // about, mirroring the text grammar's unknown-option errors.
  auto for_each_field =
      [&](const std::function<Status(const std::string&, const JsonValue&)>&
              handle) -> Status {
    for (const auto& [key, value] : frame.object) {
      if (key == "id" || key == "cmd") continue;
      KPLEX_RETURN_IF_ERROR(handle(key, value));
    }
    return Status::Ok();
  };

  if (*cmd == "hello") {
    HelloRequest hello;
    Status walked = for_each_field([&](const std::string& key,
                                       const JsonValue& value) -> Status {
      if (key == "proto") {
        auto parsed_version = GetUint(value, key, UINT32_MAX);
        if (!parsed_version.ok()) return parsed_version.status();
        hello.version = static_cast<uint32_t>(*parsed_version);
        return Status::Ok();
      }
      if (key == "mode") {
        auto name = GetString(value, key);
        if (!name.ok()) return name.status();
        auto mode = ParseWireMode(*name);
        if (!mode.ok()) return mode.status();
        hello.mode = *mode;
        return Status::Ok();
      }
      return UnknownField(*cmd, key);
    });
    if (!walked.ok()) return walked;
    request.payload = hello;
    return request;
  }
  if (*cmd == "load" || *cmd == "dataset") {
    std::string name, locator;
    const std::string locator_key = *cmd == "load" ? "path" : "key";
    Status walked = for_each_field([&](const std::string& key,
                                       const JsonValue& value) -> Status {
      if (key == "name") {
        auto parsed_name = GetString(value, key);
        if (!parsed_name.ok()) return parsed_name.status();
        name = *parsed_name;
        return Status::Ok();
      }
      if (key == locator_key) {
        auto parsed_locator = GetString(value, key);
        if (!parsed_locator.ok()) return parsed_locator.status();
        locator = *parsed_locator;
        return Status::Ok();
      }
      return UnknownField(*cmd, key);
    });
    if (!walked.ok()) return walked;
    if (name.empty() || locator.empty()) {
      return Status::InvalidArgument("'" + *cmd +
                                     "' requires fields name, " +
                                     locator_key);
    }
    if (*cmd == "load") {
      request.payload = LoadRequest{std::move(name), std::move(locator)};
    } else {
      request.payload = DatasetRequest{std::move(name), std::move(locator)};
    }
    return request;
  }
  if (*cmd == "snapshot") {
    SnapshotRequest snapshot;
    Status walked = for_each_field([&](const std::string& key,
                                       const JsonValue& value) -> Status {
      if (key == "name" || key == "path") {
        auto parsed_string = GetString(value, key);
        if (!parsed_string.ok()) return parsed_string.status();
        (key == "name" ? snapshot.name : snapshot.path) = *parsed_string;
        return Status::Ok();
      }
      if (key == "precompute") {
        auto flag = GetBool(value, key);
        if (!flag.ok()) return flag.status();
        snapshot.include_precompute = *flag;
        return Status::Ok();
      }
      if (key == "levels") {
        if (value.kind != JsonValue::Kind::kArray) {
          return WrongType(key, "an array of unsigned integers");
        }
        for (const JsonValue& level : value.array) {
          auto parsed_level = GetUint(level, key, UINT32_MAX);
          if (!parsed_level.ok()) return parsed_level.status();
          snapshot.core_mask_levels.push_back(
              static_cast<uint32_t>(*parsed_level));
        }
        snapshot.include_precompute = true;
        return Status::Ok();
      }
      return UnknownField(*cmd, key);
    });
    if (!walked.ok()) return walked;
    if (snapshot.name.empty() || snapshot.path.empty()) {
      return Status::InvalidArgument(
          "'snapshot' requires fields name, path");
    }
    request.payload = std::move(snapshot);
    return request;
  }
  if (*cmd == "mine" || *cmd == "submit" || *cmd == "mineshard" ||
      *cmd == "shardsubmit") {
    QueryRequest query;
    uint64_t expected_hash = 0;
    bool saw_k = false, saw_q = false;
    Status walked = for_each_field([&](const std::string& key,
                                       const JsonValue& value) -> Status {
      if (key == "graph") {
        auto name = GetString(value, key);
        if (!name.ok()) return name.status();
        query.graph = *name;
        return Status::Ok();
      }
      if (key == "seed_begin" || key == "seed_end") {
        auto parsed_uint = GetUint(value, key, UINT32_MAX);
        if (!parsed_uint.ok()) return parsed_uint.status();
        (key == "seed_begin" ? query.seed_begin : query.seed_end) =
            static_cast<uint32_t>(*parsed_uint);
        return Status::Ok();
      }
      if (key == "hash" && (*cmd == "mineshard" || *cmd == "shardsubmit")) {
        auto text = GetString(value, key);
        if (!text.ok()) return text.status();
        auto parsed_hash = ParseHexU64(key, *text);
        if (!parsed_hash.ok()) return parsed_hash.status();
        expected_hash = *parsed_hash;
        return Status::Ok();
      }
      if (key == "k" || key == "q" || key == "threads") {
        auto parsed_uint = GetUint(value, key, UINT32_MAX);
        if (!parsed_uint.ok()) return parsed_uint.status();
        const uint32_t narrow = static_cast<uint32_t>(*parsed_uint);
        if (key == "k") {
          query.k = narrow;
          saw_k = true;
        } else if (key == "q") {
          query.q = narrow;
          saw_q = true;
        } else {
          query.threads = narrow;
        }
        return Status::Ok();
      }
      if (key == "algo") {
        auto name = GetString(value, key);
        if (!name.ok()) return name.status();
        auto algo = ParseQueryAlgo(*name);
        if (!algo.ok()) return algo.status();
        query.algo = *algo;
        return Status::Ok();
      }
      if (key == "max_results") {
        auto parsed_uint = GetUint(value, key);
        if (!parsed_uint.ok()) return parsed_uint.status();
        query.max_results = *parsed_uint;
        return Status::Ok();
      }
      if (key == "time_limit" || key == "tau_ms") {
        auto parsed_double = GetDouble(value, key);
        if (!parsed_double.ok()) return parsed_double.status();
        (key == "time_limit" ? query.time_limit_seconds : query.tau_ms) =
            *parsed_double;
        return Status::Ok();
      }
      if (key == "ctcp" || key == "cache") {
        auto flag = GetBool(value, key);
        if (!flag.ok()) return flag.status();
        (key == "ctcp" ? query.use_ctcp : query.use_cache) = *flag;
        return Status::Ok();
      }
      if (key == "results") {
        auto text = GetString(value, key);
        if (!text.ok()) return text.status();
        if (*text != "stream" && *text != "count") {
          return Status::InvalidArgument("results must be stream or count");
        }
        query.collect_bodies = *text == "stream";
        return Status::Ok();
      }
      if (key == "chunk") {
        auto parsed_uint = GetUint(value, key, 65536);
        if (!parsed_uint.ok()) return parsed_uint.status();
        if (*parsed_uint == 0) {
          return Status::InvalidArgument("chunk must be >= 1");
        }
        query.chunk_size = static_cast<uint32_t>(*parsed_uint);
        return Status::Ok();
      }
      if (key == "min_size" || key == "max_size") {
        auto parsed_uint = GetUint(value, key);
        if (!parsed_uint.ok()) return parsed_uint.status();
        if (*parsed_uint == 0) {
          return Status::InvalidArgument("filter size bound must be >= 1");
        }
        (key == "min_size" ? query.filter_min_size : query.filter_max_size) =
            *parsed_uint;
        return Status::Ok();
      }
      if (key == "contain") {
        auto parsed_uint = GetUint(value, key, UINT32_MAX);
        if (!parsed_uint.ok()) return parsed_uint.status();
        query.has_contain = true;
        query.contain = static_cast<uint32_t>(*parsed_uint);
        return Status::Ok();
      }
      if (key == "top") {
        auto parsed_uint = GetUint(value, key);
        if (!parsed_uint.ok()) return parsed_uint.status();
        if (*parsed_uint == 0) {
          return Status::InvalidArgument("top must be >= 1");
        }
        query.top_k = *parsed_uint;
        return Status::Ok();
      }
      if (key == "mode") {
        auto text = GetString(value, key);
        if (!text.ok()) return text.status();
        if (*text != "enumerate" && *text != "maximum") {
          return Status::InvalidArgument("mode must be enumerate or maximum");
        }
        query.maximum = *text == "maximum";
        return Status::Ok();
      }
      if (key == "cursor") {
        auto text = GetString(value, key);
        if (!text.ok()) return text.status();
        KPLEX_RETURN_IF_ERROR(ParseCursorValue(*text, &query.cursor_seed,
                                               &query.cursor_ordinal));
        query.has_cursor = true;
        return Status::Ok();
      }
      return UnknownField(*cmd, key);
    });
    if (!walked.ok()) return walked;
    if (query.graph.empty() || !saw_k || !saw_q) {
      return Status::InvalidArgument("'" + *cmd +
                                     "' requires fields graph, k, q");
    }
    if (query.seed_begin > query.seed_end) {
      return Status::InvalidArgument(
          "seed_begin must be <= seed_end (got " +
          std::to_string(query.seed_begin) + ":" +
          std::to_string(query.seed_end) + ")");
    }
    KPLEX_RETURN_IF_ERROR(CheckSelectionOptions(query));
    if (*cmd == "mine") {
      request.payload = MineRequest{std::move(query)};
    } else if (*cmd == "submit") {
      request.payload = SubmitRequest{std::move(query)};
    } else if (*cmd == "mineshard") {
      request.payload = MineShardRequest{std::move(query), expected_hash};
    } else {
      request.payload = ShardSubmitRequest{std::move(query), expected_hash};
    }
    return request;
  }
  if (*cmd == "plan") {
    PlanRequest plan;
    bool saw_k = false, saw_q = false;
    Status walked = for_each_field([&](const std::string& key,
                                       const JsonValue& value) -> Status {
      if (key == "graph") {
        auto name = GetString(value, key);
        if (!name.ok()) return name.status();
        plan.graph = *name;
        return Status::Ok();
      }
      if (key == "k" || key == "q") {
        auto parsed_uint = GetUint(value, key, UINT32_MAX);
        if (!parsed_uint.ok()) return parsed_uint.status();
        if (key == "k") {
          plan.k = static_cast<uint32_t>(*parsed_uint);
          saw_k = true;
        } else {
          plan.q = static_cast<uint32_t>(*parsed_uint);
          saw_q = true;
        }
        return Status::Ok();
      }
      if (key == "ctcp") {
        auto flag = GetBool(value, key);
        if (!flag.ok()) return flag.status();
        plan.use_ctcp = *flag;
        return Status::Ok();
      }
      return UnknownField(*cmd, key);
    });
    if (!walked.ok()) return walked;
    if (plan.graph.empty() || !saw_k || !saw_q) {
      return Status::InvalidArgument("'plan' requires fields graph, k, q");
    }
    request.payload = std::move(plan);
    return request;
  }
  if (*cmd == "shardwait" || *cmd == "shardstop") {
    std::optional<uint64_t> job;
    Status walked = for_each_field([&](const std::string& key,
                                       const JsonValue& value) -> Status {
      if (key == "job") {
        auto parsed_job = GetUint(value, key);
        if (!parsed_job.ok()) return parsed_job.status();
        job = *parsed_job;
        return Status::Ok();
      }
      return UnknownField(*cmd, key);
    });
    if (!walked.ok()) return walked;
    if (!job.has_value()) {
      return Status::InvalidArgument("'" + *cmd + "' requires field job");
    }
    if (*cmd == "shardwait") {
      request.payload = ShardWaitRequest{*job};
    } else {
      request.payload = ShardStopRequest{*job};
    }
    return request;
  }
  if (*cmd == "register") {
    std::string endpoint;
    Status walked = for_each_field([&](const std::string& key,
                                       const JsonValue& value) -> Status {
      if (key == "endpoint") {
        auto parsed_endpoint = GetString(value, key);
        if (!parsed_endpoint.ok()) return parsed_endpoint.status();
        endpoint = *parsed_endpoint;
        return Status::Ok();
      }
      return UnknownField(*cmd, key);
    });
    if (!walked.ok()) return walked;
    if (endpoint.empty()) {
      return Status::InvalidArgument("'register' requires field endpoint");
    }
    request.payload = RegisterRequest{std::move(endpoint)};
    return request;
  }
  if (*cmd == "heartbeat" || *cmd == "drain") {
    std::optional<uint64_t> worker;
    Status walked = for_each_field([&](const std::string& key,
                                       const JsonValue& value) -> Status {
      if (key == "worker") {
        auto parsed_worker = GetUint(value, key);
        if (!parsed_worker.ok()) return parsed_worker.status();
        worker = *parsed_worker;
        return Status::Ok();
      }
      return UnknownField(*cmd, key);
    });
    if (!walked.ok()) return walked;
    if (!worker.has_value()) {
      return Status::InvalidArgument("'" + *cmd + "' requires field worker");
    }
    if (*cmd == "heartbeat") {
      request.payload = HeartbeatRequest{*worker};
    } else {
      request.payload = DrainRequest{*worker};
    }
    return request;
  }
  if (*cmd == "cancel" || *cmd == "wait") {
    std::optional<uint64_t> job;
    Status walked = for_each_field([&](const std::string& key,
                                       const JsonValue& value) -> Status {
      if (key == "job") {
        auto parsed_job = GetUint(value, key);
        if (!parsed_job.ok()) return parsed_job.status();
        job = *parsed_job;
        return Status::Ok();
      }
      return UnknownField(*cmd, key);
    });
    if (!walked.ok()) return walked;
    if (*cmd == "cancel") {
      if (!job.has_value()) {
        return Status::InvalidArgument("'cancel' requires field job");
      }
      request.payload = CancelRequest{*job};
    } else {
      request.payload = WaitRequest{job};
    }
    return request;
  }
  if (*cmd == "evict") {
    std::string name;
    Status walked = for_each_field([&](const std::string& key,
                                       const JsonValue& value) -> Status {
      if (key == "name") {
        auto parsed_name = GetString(value, key);
        if (!parsed_name.ok()) return parsed_name.status();
        name = *parsed_name;
        return Status::Ok();
      }
      return UnknownField(*cmd, key);
    });
    if (!walked.ok()) return walked;
    if (name.empty()) {
      return Status::InvalidArgument("'evict' requires field name");
    }
    request.payload = EvictRequest{std::move(name)};
    return request;
  }
  if (*cmd == "metrics") {
    MetricsRequest metrics;
    Status walked = for_each_field([&](const std::string& key,
                                       const JsonValue& value) -> Status {
      if (key == "format") {
        auto parsed_format = GetString(value, key);
        if (!parsed_format.ok()) return parsed_format.status();
        metrics.format = *parsed_format;
        return Status::Ok();
      }
      return UnknownField(*cmd, key);
    });
    if (!walked.ok()) return walked;
    request.payload = std::move(metrics);
    return request;
  }
  if (*cmd == "store") {
    StoreRequest store;
    Status walked = for_each_field([&](const std::string& key,
                                       const JsonValue& value) -> Status {
      if (key == "evict") {
        auto flag = GetBool(value, key);
        if (!flag.ok()) return flag.status();
        store.evict = *flag;
        return Status::Ok();
      }
      return UnknownField(*cmd, key);
    });
    if (!walked.ok()) return walked;
    request.payload = store;
    return request;
  }
  if (*cmd == "jobs" || *cmd == "stats" || *cmd == "help" ||
      *cmd == "quit" || *cmd == "workers") {
    Status walked = for_each_field(
        [&](const std::string& key, const JsonValue&) -> Status {
          return UnknownField(*cmd, key);
        });
    if (!walked.ok()) return walked;
    if (*cmd == "jobs") request.payload = JobsRequest{};
    else if (*cmd == "stats") request.payload = StatsRequest{};
    else if (*cmd == "help") request.payload = HelpRequest{};
    else if (*cmd == "workers") request.payload = WorkersRequest{};
    else request.payload = QuitRequest{};
    return request;
  }
  return Status::InvalidArgument("unknown command '" + *cmd +
                                 "' (try 'help')");
}

// ---------------------------------------------------------- framed format

std::string FormatFramedRequest(const Request& request) {
  JsonWriter json;
  json.BeginObject();
  if (request.id != 0) json.Add("id", request.id);

  struct Visitor {
    JsonWriter& json;

    void operator()(const HelloRequest& hello) const {
      json.Add("cmd", "hello");
      json.Add("proto", hello.version);
      if (hello.mode.has_value()) {
        json.Add("mode", WireModeName(*hello.mode));
      }
    }
    void operator()(const LoadRequest& load) const {
      json.Add("cmd", "load");
      json.Add("name", load.name);
      json.Add("path", load.path);
    }
    void operator()(const DatasetRequest& dataset) const {
      json.Add("cmd", "dataset");
      json.Add("name", dataset.name);
      json.Add("key", dataset.key);
    }
    void operator()(const SnapshotRequest& snapshot) const {
      json.Add("cmd", "snapshot");
      json.Add("name", snapshot.name);
      json.Add("path", snapshot.path);
      if (snapshot.include_precompute) json.Add("precompute", true);
      if (!snapshot.core_mask_levels.empty()) {
        json.BeginArray("levels");
        for (uint32_t level : snapshot.core_mask_levels) {
          json.AddElement(level);
        }
        json.EndArray();
      }
    }
    void AddQuery(const char* cmd, const QueryRequest& query) const {
      json.Add("cmd", cmd);
      json.Add("graph", query.graph);
      json.Add("k", query.k);
      json.Add("q", query.q);
      if (query.algo != QueryAlgo::kOurs) {
        json.Add("algo", QueryAlgoName(query.algo));
      }
      if (query.threads > 0) json.Add("threads", query.threads);
      if (query.max_results > 0) json.Add("max_results", query.max_results);
      if (query.time_limit_seconds > 0) {
        json.Add("time_limit", query.time_limit_seconds);
      }
      if (query.tau_ms != QueryRequest{}.tau_ms) {
        json.Add("tau_ms", query.tau_ms);
      }
      if (query.use_ctcp) json.Add("ctcp", true);
      if (!query.use_cache) json.Add("cache", false);
      if (query.HasSeedRange()) {
        json.Add("seed_begin", query.seed_begin);
        json.Add("seed_end", query.seed_end);
      }
      if (query.collect_bodies) json.Add("results", "stream");
      if (query.chunk_size > 0) json.Add("chunk", query.chunk_size);
      if (query.filter_min_size > 0) {
        json.Add("min_size", query.filter_min_size);
      }
      if (query.filter_max_size > 0) {
        json.Add("max_size", query.filter_max_size);
      }
      if (query.has_contain) json.Add("contain", query.contain);
      if (query.top_k > 0) json.Add("top", query.top_k);
      if (query.maximum) json.Add("mode", "maximum");
      if (query.has_cursor) {
        json.Add("cursor",
                 FormatCursorValue(query.cursor_seed, query.cursor_ordinal));
      }
    }
    void operator()(const MineRequest& mine) const {
      AddQuery("mine", mine.query);
    }
    void operator()(const SubmitRequest& submit) const {
      AddQuery("submit", submit.query);
    }
    void operator()(const MineShardRequest& shard) const {
      AddQuery("mineshard", shard.query);
      if (shard.expected_hash != 0) {
        json.Add("hash", HexFingerprint(shard.expected_hash));
      }
    }
    void operator()(const PlanRequest& plan) const {
      json.Add("cmd", "plan");
      json.Add("graph", plan.graph);
      json.Add("k", plan.k);
      json.Add("q", plan.q);
      if (plan.use_ctcp) json.Add("ctcp", true);
    }
    void operator()(const ShardSubmitRequest& shard) const {
      AddQuery("shardsubmit", shard.query);
      if (shard.expected_hash != 0) {
        json.Add("hash", HexFingerprint(shard.expected_hash));
      }
    }
    void operator()(const ShardWaitRequest& wait) const {
      json.Add("cmd", "shardwait");
      json.Add("job", wait.job);
    }
    void operator()(const ShardStopRequest& stop) const {
      json.Add("cmd", "shardstop");
      json.Add("job", stop.job);
    }
    void operator()(const RegisterRequest& reg) const {
      json.Add("cmd", "register");
      json.Add("endpoint", reg.endpoint);
    }
    void operator()(const HeartbeatRequest& beat) const {
      json.Add("cmd", "heartbeat");
      json.Add("worker", beat.worker);
    }
    void operator()(const DrainRequest& drain) const {
      json.Add("cmd", "drain");
      json.Add("worker", drain.worker);
    }
    void operator()(const WorkersRequest&) const {
      json.Add("cmd", "workers");
    }
    void operator()(const CancelRequest& cancel) const {
      json.Add("cmd", "cancel");
      json.Add("job", cancel.job);
    }
    void operator()(const JobsRequest&) const { json.Add("cmd", "jobs"); }
    void operator()(const WaitRequest& wait) const {
      json.Add("cmd", "wait");
      if (wait.job.has_value()) json.Add("job", *wait.job);
    }
    void operator()(const StatsRequest&) const { json.Add("cmd", "stats"); }
    void operator()(const MetricsRequest& metrics) const {
      json.Add("cmd", "metrics");
      if (!metrics.format.empty()) json.Add("format", metrics.format);
    }
    void operator()(const EvictRequest& evict) const {
      json.Add("cmd", "evict");
      json.Add("name", evict.name);
    }
    void operator()(const StoreRequest& store) const {
      json.Add("cmd", "store");
      if (store.evict) json.Add("evict", true);
    }
    void operator()(const HelpRequest&) const { json.Add("cmd", "help"); }
    void operator()(const QuitRequest&) const { json.Add("cmd", "quit"); }
  };
  std::visit(Visitor{json}, request.payload);
  json.EndObject();
  return json.str();
}

// Nested "store" object shared by the framed stats and store frames.
void WriteStoreStatusObject(JsonWriter& json, const StoreStatusInfo& info) {
  json.BeginObjectValue("store");
  json.Add("enabled", info.enabled);
  if (info.enabled) {
    json.Add("entries", info.entries);
    json.Add("bytes", info.bytes);
    json.Add("budget_bytes", info.byte_budget);
    json.Add("hits", info.hits);
    json.Add("misses", info.misses);
    json.Add("writes", info.writes);
    json.Add("evictions", info.evictions);
    json.Add("corrupt", info.corrupt_entries);
  }
  json.EndObject();
}

std::string FormatFramedResponse(const Response& response) {
  JsonWriter json;
  json.BeginObject();
  json.Add("id", response.request_id);
  json.Add("ok",
           !std::holds_alternative<ErrorResponse>(response.payload));

  struct Visitor {
    JsonWriter& json;

    void operator()(const HelloResponse& hello) const {
      json.Add("type", "hello");
      json.Add("proto", hello.version);
      // A framed-rendered hello means the session is in (or just
      // switched to) framed mode.
      json.Add("mode", WireModeName(hello.mode.value_or(WireMode::kFramed)));
    }
    void operator()(const LoadResponse& loaded) const {
      json.Add("type", "load");
      json.Add("name", loaded.name);
      json.Add("vertices", loaded.num_vertices);
      json.Add("edges", loaded.num_edges);
      json.Add("seconds", loaded.load_seconds);
      if (!loaded.dataset_key.empty()) {
        json.Add("dataset", loaded.dataset_key);
      }
    }
    void operator()(const SnapshotResponse& snapshot) const {
      json.Add("type", "snapshot");
      json.Add("name", snapshot.name);
      json.Add("path", snapshot.path);
      json.Add("precompute", snapshot.with_precompute);
    }
    void operator()(const MineResponse& mine) const {
      json.Add("type", "mine");
      WriteJobFields(json, mine.job);
    }
    void operator()(const SubmitResponse& submit) const {
      json.Add("type", "submitted");
      json.Add("job", submit.job);
      WriteQueryObject(json, "query", submit.query);
    }
    void operator()(const ShardResultResponse& shard) const {
      json.Add("type", "shard_result");
      WriteJobFields(json, shard.job);
      const bool has_result =
          shard.job.state == JobState::kDone ||
          (shard.job.state == JobState::kCancelled && shard.job.started);
      if (has_result) {
        // The mergeable extras beyond the common job fields: the raw
        // XOR half and the seed-space size (coordinator planning).
        json.Add("fingerprint_xor",
                 HexFingerprint(shard.job.result.fingerprint_xor));
        json.Add("total_seeds", shard.job.result.total_seeds);
        // Yield outcome (v5 work-stealing) — additive fields, only on
        // shard_result frames: a yielded shard answers its covered
        // prefix completely; the coordinator re-issues the rest.
        if (shard.job.result.yielded) {
          json.Add("yielded", true);
          json.Add("covered_begin", shard.job.result.covered_begin);
          json.Add("covered_end", shard.job.result.covered_end);
        }
      }
      json.Add("content_hash", HexFingerprint(shard.content_hash));
    }
    void operator()(const PlanResponse& plan) const {
      json.Add("type", "plan");
      json.Add("graph", plan.graph);
      json.Add("total_seeds", plan.total_seeds);
      json.Add("content_hash", HexFingerprint(plan.content_hash));
      json.Add("degeneracy", plan.degeneracy);
      json.Add("precomputed", plan.precomputed);
      json.Add("seconds", plan.seconds);
      json.BeginArray("degrees");
      for (uint32_t degree : plan.degrees) json.AddElement(degree);
      json.EndArray();
      json.BeginArray("coreness");
      for (uint32_t coreness : plan.coreness) json.AddElement(coreness);
      json.EndArray();
    }
    void operator()(const ShardSubmitResponse& shard) const {
      json.Add("type", "shard_submitted");
      json.Add("job", shard.job);
      json.Add("content_hash", HexFingerprint(shard.content_hash));
    }
    void operator()(const ShardStopResponse& stop) const {
      json.Add("type", "shard_stopping");
      json.Add("job", stop.job);
    }
    void operator()(const WorkerAckResponse& ack) const {
      json.Add("type", "worker_ack");
      json.Add("worker", ack.worker);
      json.Add("state", ack.state);
    }
    void operator()(const WorkersResponse& workers) const {
      json.Add("type", "workers");
      json.BeginArray("workers");
      for (const WorkerInfo& info : workers.workers) {
        json.BeginArrayElementObject();
        json.Add("worker", info.id);
        json.Add("endpoint", info.endpoint);
        json.Add("state", info.state);
        json.Add("chunks_done", info.chunks_done);
        json.Add("chunks_failed", info.chunks_failed);
        json.EndObject();
      }
      json.EndArray();
    }
    void operator()(const ResultChunkResponse& chunk) const {
      json.Add("type", "result_chunk");
      json.Add("job", chunk.job);
      json.Add("seq", chunk.seq);
      json.Add("last", chunk.last);
      json.BeginArray("plexes");
      for (const std::vector<VertexId>& plex : chunk.plexes) {
        json.BeginArrayElementArray();
        for (VertexId v : plex) json.AddElement(v);
        json.EndArray();
      }
      json.EndArray();
    }
    void operator()(const CancelResponse& cancel) const {
      json.Add("type", "cancelling");
      json.Add("job", cancel.job);
    }
    void operator()(const JobsResponse& jobs) const {
      json.Add("type", "jobs");
      json.BeginArray("jobs");
      for (const JobInfo& info : jobs.jobs) {
        json.BeginArrayElementObject();
        WriteJobFields(json, info);
        json.EndObject();
      }
      json.EndArray();
    }
    void operator()(const WaitResponse& wait) const {
      json.Add("type", "wait");
      WriteJobFields(json, wait.job);
    }
    void operator()(const WaitAllResponse& all) const {
      json.Add("type", "wait_all");
      json.Add("done", all.counts.done);
      json.Add("cancelled", all.counts.cancelled);
      json.Add("failed", all.counts.failed);
      json.BeginArray("failed_jobs");
      for (uint64_t id : all.failed_jobs) json.AddElement(id);
      json.EndArray();
    }
    void operator()(const StatsResponse& stats) const {
      json.Add("type", "stats");
      json.BeginArray("graphs");
      for (const CatalogEntryInfo& info : stats.graphs) {
        json.BeginArrayElementObject();
        json.Add("name", info.name);
        json.Add("source", info.source);
        json.Add("resident", info.resident);
        json.Add("evictable", info.evictable);
        json.Add("mapped", info.mapped);
        json.Add("vertices", info.num_vertices);
        json.Add("edges", info.num_edges);
        json.Add("owned_bytes", info.memory_bytes);
        json.Add("mapped_bytes", info.mapped_bytes);
        json.Add("precompute", info.precompute);
        if (info.content_hash != 0) {
          json.Add("content_hash", HexFingerprint(info.content_hash));
        }
        json.Add("loads", info.loads);
        json.Add("load_seconds", info.last_load_seconds);
        json.EndObject();
      }
      json.EndArray();
      json.Add("resident_bytes", stats.resident_bytes);
      json.Add("mapped_resident_bytes", stats.mapped_resident_bytes);
      json.Add("budget_bytes", stats.memory_budget_bytes);
      json.BeginObjectValue("cache");
      json.Add("entries", stats.cache.entries);
      json.Add("capacity", stats.cache.capacity);
      json.Add("hits", stats.cache.hits);
      json.Add("misses", stats.cache.misses);
      json.EndObject();
      json.BeginObjectValue("dispatcher");
      json.Add("workers", stats.workers);
      json.Add("queued", stats.jobs.queued);
      json.Add("running", stats.jobs.running);
      json.Add("done", stats.jobs.done);
      json.Add("cancelled", stats.jobs.cancelled);
      json.Add("failed", stats.jobs.failed);
      json.EndObject();
      WriteStoreStatusObject(json, stats.store);
    }
    void operator()(const MetricsResponse& metrics) const {
      json.Add("type", "metrics");
      json.BeginArray("counters");
      for (const CounterSample& counter : metrics.snapshot.counters) {
        json.BeginArrayElementObject();
        json.Add("name", counter.name);
        json.Add("value", counter.value);
        json.EndObject();
      }
      json.EndArray();
      json.BeginArray("gauges");
      for (const GaugeSample& gauge : metrics.snapshot.gauges) {
        json.BeginArrayElementObject();
        json.Add("name", gauge.name);
        json.Add("value", gauge.value);
        json.EndObject();
      }
      json.EndArray();
      json.BeginArray("histograms");
      for (const HistogramSample& histogram : metrics.snapshot.histograms) {
        json.BeginArrayElementObject();
        json.Add("name", histogram.name);
        json.Add("count", histogram.count);
        json.Add("sum", histogram.sum);
        json.Add("p50", histogram.p50);
        json.Add("p95", histogram.p95);
        json.Add("p99", histogram.p99);
        json.BeginArray("le");
        for (double bound : histogram.bounds) json.AddElement(bound);
        json.EndArray();
        json.BeginArray("buckets");
        for (uint64_t count : histogram.buckets) json.AddElement(count);
        json.EndArray();
        json.EndObject();
      }
      json.EndArray();
    }
    void operator()(const EvictResponse& evict) const {
      json.Add("type", "evicted");
      json.Add("name", evict.name);
    }
    void operator()(const StoreResponse& store) const {
      json.Add("type", "store");
      json.Add("evicted", store.evicted);
      if (store.evicted) {
        json.Add("evicted_entries", store.evicted_entries);
        json.Add("evicted_bytes", store.evicted_bytes);
      }
      WriteStoreStatusObject(json, store.info);
    }
    void operator()(const HelpResponse&) const {
      json.Add("type", "help");
      json.Add("text", kHelpText);
    }
    void operator()(const ByeResponse&) const { json.Add("type", "bye"); }
    void operator()(const ErrorResponse& error) const {
      json.Add("type", "error");
      json.Add("code", StatusCodeName(error.status.code()));
      json.Add("message", error.status.message());
    }
  };
  std::visit(Visitor{json}, response.payload);
  json.EndObject();
  return json.str();
}

// ----------------------------------------------- framed client decode

namespace {

/// Parses a framed response line into its JSON object, surfacing
/// {"ok":false,...} frames as the embedded structured Status.
StatusOr<JsonValue> ParseResponseFrame(const std::string& line) {
  auto parsed = JsonParser(line).Parse();
  if (!parsed.ok()) return parsed.status();
  if (parsed->kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument(
        "malformed frame: expected a JSON object");
  }
  const JsonValue* ok = parsed->Find("ok");
  if (ok == nullptr || ok->kind != JsonValue::Kind::kBool) {
    return Status::InvalidArgument(
        "response frame is missing the 'ok' field");
  }
  if (!ok->bool_value) {
    const JsonValue* code = parsed->Find("code");
    const JsonValue* message = parsed->Find("message");
    const StatusCode decoded =
        code != nullptr && code->kind == JsonValue::Kind::kString
            ? StatusCodeFromName(code->string_value)
            : StatusCode::kInternal;
    return Status(decoded,
                  message != nullptr &&
                          message->kind == JsonValue::Kind::kString
                      ? message->string_value
                      : "unspecified server error");
  }
  return parsed;
}

/// Requires frame["type"] == expected.
Status ExpectFrameType(const JsonValue& frame, const char* expected) {
  const JsonValue* type = frame.Find("type");
  if (type == nullptr || type->kind != JsonValue::Kind::kString ||
      type->string_value != expected) {
    return Status::InvalidArgument(
        std::string("expected a '") + expected + "' frame, got '" +
        (type != nullptr && type->kind == JsonValue::Kind::kString
             ? type->string_value
             : "?") +
        "'");
  }
  return Status::Ok();
}

/// Optional-field readers: absent fields keep the default.
Status ReadUintField(const JsonValue& frame, const char* key,
                     uint64_t* out) {
  const JsonValue* value = frame.Find(key);
  if (value == nullptr) return Status::Ok();
  auto parsed = GetUint(*value, key);
  if (!parsed.ok()) return parsed.status();
  *out = *parsed;
  return Status::Ok();
}

Status ReadHexField(const JsonValue& frame, const char* key, uint64_t* out) {
  const JsonValue* value = frame.Find(key);
  if (value == nullptr) return Status::Ok();
  auto text = GetString(*value, key);
  if (!text.ok()) return text.status();
  auto parsed = ParseHexU64(key, *text);
  if (!parsed.ok()) return parsed.status();
  *out = *parsed;
  return Status::Ok();
}

Status ReadDoubleField(const JsonValue& frame, const char* key,
                       double* out) {
  const JsonValue* value = frame.Find(key);
  if (value == nullptr) return Status::Ok();
  auto parsed = GetDouble(*value, key);
  if (!parsed.ok()) return parsed.status();
  *out = *parsed;
  return Status::Ok();
}

Status ReadBoolField(const JsonValue& frame, const char* key, bool* out) {
  const JsonValue* value = frame.Find(key);
  if (value == nullptr) return Status::Ok();
  auto parsed = GetBool(*value, key);
  if (!parsed.ok()) return parsed.status();
  *out = *parsed;
  return Status::Ok();
}

}  // namespace

StatusOr<uint32_t> ParseFramedHelloVersion(const std::string& line) {
  auto frame = ParseResponseFrame(line);
  if (!frame.ok()) return frame.status();
  KPLEX_RETURN_IF_ERROR(ExpectFrameType(*frame, "hello"));
  const JsonValue* proto = frame->Find("proto");
  if (proto == nullptr) {
    return Status::InvalidArgument("hello frame is missing 'proto'");
  }
  auto version = GetUint(*proto, "proto", UINT32_MAX);
  if (!version.ok()) return version.status();
  return static_cast<uint32_t>(*version);
}

StatusOr<ParsedShardResult> ParseFramedShardResult(const std::string& line) {
  auto frame = ParseResponseFrame(line);
  if (!frame.ok()) return frame.status();
  KPLEX_RETURN_IF_ERROR(ExpectFrameType(*frame, "shard_result"));
  ParsedShardResult result;
  const JsonValue* state = frame->Find("state");
  if (state == nullptr || state->kind != JsonValue::Kind::kString) {
    return Status::InvalidArgument("shard_result frame is missing 'state'");
  }
  result.state = state->string_value;
  if (result.state == "failed") {
    // A failed shard job travels inside the frame (state + error); the
    // coordinator consumes it as a structured Status like any other
    // failure.
    const JsonValue* error = frame->Find("error");
    if (error != nullptr && error->kind == JsonValue::Kind::kObject) {
      const JsonValue* code = error->Find("code");
      const JsonValue* message = error->Find("message");
      return Status(
          code != nullptr && code->kind == JsonValue::Kind::kString
              ? StatusCodeFromName(code->string_value)
              : StatusCode::kInternal,
          message != nullptr && message->kind == JsonValue::Kind::kString
              ? message->string_value
              : "shard job failed");
    }
    return Status::Internal("shard job failed");
  }
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "id", &result.request_id));
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "plexes", &result.plexes));
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "max_size", &result.max_size));
  KPLEX_RETURN_IF_ERROR(
      ReadUintField(*frame, "total_seeds", &result.total_seeds));
  KPLEX_RETURN_IF_ERROR(
      ReadHexField(*frame, "fingerprint", &result.fingerprint));
  KPLEX_RETURN_IF_ERROR(
      ReadHexField(*frame, "fingerprint_xor", &result.fingerprint_xor));
  KPLEX_RETURN_IF_ERROR(
      ReadHexField(*frame, "content_hash", &result.content_hash));
  KPLEX_RETURN_IF_ERROR(ReadDoubleField(*frame, "seconds", &result.seconds));
  KPLEX_RETURN_IF_ERROR(
      ReadBoolField(*frame, "timed_out", &result.timed_out));
  KPLEX_RETURN_IF_ERROR(
      ReadBoolField(*frame, "stopped_early", &result.stopped_early));
  KPLEX_RETURN_IF_ERROR(
      ReadBoolField(*frame, "cancelled", &result.cancelled));
  KPLEX_RETURN_IF_ERROR(ReadBoolField(*frame, "yielded", &result.yielded));
  KPLEX_RETURN_IF_ERROR(
      ReadUintField(*frame, "covered_begin", &result.covered_begin));
  KPLEX_RETURN_IF_ERROR(
      ReadUintField(*frame, "covered_end", &result.covered_end));
  return result;
}

StatusOr<ParsedPlan> ParseFramedPlan(const std::string& line) {
  auto frame = ParseResponseFrame(line);
  if (!frame.ok()) return frame.status();
  KPLEX_RETURN_IF_ERROR(ExpectFrameType(*frame, "plan"));
  ParsedPlan plan;
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "id", &plan.request_id));
  KPLEX_RETURN_IF_ERROR(
      ReadUintField(*frame, "total_seeds", &plan.total_seeds));
  KPLEX_RETURN_IF_ERROR(
      ReadHexField(*frame, "content_hash", &plan.content_hash));
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "degeneracy", &plan.degeneracy));
  KPLEX_RETURN_IF_ERROR(
      ReadBoolField(*frame, "precomputed", &plan.precomputed));
  KPLEX_RETURN_IF_ERROR(ReadDoubleField(*frame, "seconds", &plan.seconds));
  for (const char* key : {"degrees", "coreness"}) {
    const JsonValue* array = frame->Find(key);
    if (array == nullptr || array->kind != JsonValue::Kind::kArray) {
      return Status::InvalidArgument(std::string("plan frame is missing the '") +
                                     key + "' array");
    }
    std::vector<uint32_t>& out =
        std::string(key) == "degrees" ? plan.degrees : plan.coreness;
    out.reserve(array->array.size());
    for (const JsonValue& element : array->array) {
      auto parsed = GetUint(element, key, UINT32_MAX);
      if (!parsed.ok()) return parsed.status();
      out.push_back(static_cast<uint32_t>(*parsed));
    }
  }
  if (plan.degrees.size() != plan.coreness.size()) {
    return Status::InvalidArgument(
        "plan frame arrays disagree on seed count");
  }
  return plan;
}

StatusOr<ParsedShardSubmit> ParseFramedShardSubmit(const std::string& line) {
  auto frame = ParseResponseFrame(line);
  if (!frame.ok()) return frame.status();
  KPLEX_RETURN_IF_ERROR(ExpectFrameType(*frame, "shard_submitted"));
  ParsedShardSubmit submit;
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "id", &submit.request_id));
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "job", &submit.job));
  KPLEX_RETURN_IF_ERROR(
      ReadHexField(*frame, "content_hash", &submit.content_hash));
  return submit;
}

StatusOr<uint64_t> ParseFramedShardStop(const std::string& line) {
  auto frame = ParseResponseFrame(line);
  if (!frame.ok()) return frame.status();
  KPLEX_RETURN_IF_ERROR(ExpectFrameType(*frame, "shard_stopping"));
  uint64_t job = 0;
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "job", &job));
  return job;
}

StatusOr<ParsedWorkerAck> ParseFramedWorkerAck(const std::string& line) {
  auto frame = ParseResponseFrame(line);
  if (!frame.ok()) return frame.status();
  KPLEX_RETURN_IF_ERROR(ExpectFrameType(*frame, "worker_ack"));
  ParsedWorkerAck ack;
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "id", &ack.request_id));
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "worker", &ack.worker));
  const JsonValue* state = frame->Find("state");
  if (state != nullptr) {
    auto text = GetString(*state, "state");
    if (!text.ok()) return text.status();
    ack.state = *text;
  }
  return ack;
}

StatusOr<std::string> PeekFramedResponseType(const std::string& line) {
  auto frame = ParseResponseFrame(line);
  if (!frame.ok()) return frame.status();
  const JsonValue* type = frame->Find("type");
  if (type == nullptr || type->kind != JsonValue::Kind::kString) {
    return Status::InvalidArgument("response frame is missing 'type'");
  }
  return type->string_value;
}

StatusOr<ParsedResultChunk> ParseFramedResultChunk(const std::string& line) {
  auto frame = ParseResponseFrame(line);
  if (!frame.ok()) return frame.status();
  KPLEX_RETURN_IF_ERROR(ExpectFrameType(*frame, "result_chunk"));
  ParsedResultChunk chunk;
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "id", &chunk.request_id));
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "job", &chunk.job));
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "seq", &chunk.seq));
  KPLEX_RETURN_IF_ERROR(ReadBoolField(*frame, "last", &chunk.last));
  const JsonValue* plexes = frame->Find("plexes");
  if (plexes == nullptr || plexes->kind != JsonValue::Kind::kArray) {
    return Status::InvalidArgument(
        "result_chunk frame is missing the 'plexes' array");
  }
  chunk.plexes.reserve(plexes->array.size());
  for (const JsonValue& plex : plexes->array) {
    if (plex.kind != JsonValue::Kind::kArray) {
      return WrongType("plexes", "an array of vertex-id arrays");
    }
    std::vector<VertexId> vertices;
    vertices.reserve(plex.array.size());
    for (const JsonValue& vertex : plex.array) {
      auto parsed = GetUint(vertex, "plexes", UINT32_MAX);
      if (!parsed.ok()) return parsed.status();
      vertices.push_back(static_cast<VertexId>(*parsed));
    }
    chunk.plexes.push_back(std::move(vertices));
  }
  return chunk;
}

StatusOr<ParsedMineResult> ParseFramedMineResult(const std::string& line) {
  auto frame = ParseResponseFrame(line);
  if (!frame.ok()) return frame.status();
  KPLEX_RETURN_IF_ERROR(ExpectFrameType(*frame, "mine"));
  ParsedMineResult result;
  const JsonValue* state = frame->Find("state");
  if (state == nullptr || state->kind != JsonValue::Kind::kString) {
    return Status::InvalidArgument("mine frame is missing 'state'");
  }
  result.state = state->string_value;
  if (result.state == "failed") {
    const JsonValue* error = frame->Find("error");
    if (error != nullptr && error->kind == JsonValue::Kind::kObject) {
      const JsonValue* code = error->Find("code");
      const JsonValue* message = error->Find("message");
      return Status(
          code != nullptr && code->kind == JsonValue::Kind::kString
              ? StatusCodeFromName(code->string_value)
              : StatusCode::kInternal,
          message != nullptr && message->kind == JsonValue::Kind::kString
              ? message->string_value
              : "mine job failed");
    }
    return Status::Internal("mine job failed");
  }
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "id", &result.request_id));
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "plexes", &result.plexes));
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "max_size", &result.max_size));
  KPLEX_RETURN_IF_ERROR(ReadUintField(*frame, "bodies", &result.bodies));
  KPLEX_RETURN_IF_ERROR(
      ReadHexField(*frame, "fingerprint", &result.fingerprint));
  KPLEX_RETURN_IF_ERROR(ReadDoubleField(*frame, "seconds", &result.seconds));
  KPLEX_RETURN_IF_ERROR(ReadBoolField(*frame, "cached", &result.cached));
  KPLEX_RETURN_IF_ERROR(
      ReadBoolField(*frame, "timed_out", &result.timed_out));
  KPLEX_RETURN_IF_ERROR(
      ReadBoolField(*frame, "stopped_early", &result.stopped_early));
  KPLEX_RETURN_IF_ERROR(
      ReadBoolField(*frame, "cancelled", &result.cancelled));
  const JsonValue* cursor = frame->Find("cursor");
  if (cursor != nullptr) {
    auto text = GetString(*cursor, "cursor");
    if (!text.ok()) return text.status();
    KPLEX_RETURN_IF_ERROR(ParseCursorValue(*text, &result.cursor_seed,
                                           &result.cursor_ordinal));
    result.has_cursor = true;
  }
  return result;
}

StatusOr<ResumeCursor> ParseCursorText(const std::string& value) {
  ResumeCursor cursor;
  KPLEX_RETURN_IF_ERROR(
      ParseCursorValue(value, &cursor.seed, &cursor.ordinal));
  return cursor;
}

std::string FormatCursorValue(uint32_t seed, uint64_t ordinal) {
  return std::to_string(seed) + ":" + std::to_string(ordinal);
}

const char* RequestVerbName(const RequestPayload& payload) {
  struct Visitor {
    const char* operator()(const HelloRequest&) const { return "hello"; }
    const char* operator()(const LoadRequest&) const { return "load"; }
    const char* operator()(const DatasetRequest&) const { return "dataset"; }
    const char* operator()(const SnapshotRequest&) const {
      return "snapshot";
    }
    const char* operator()(const MineRequest&) const { return "mine"; }
    const char* operator()(const SubmitRequest&) const { return "submit"; }
    const char* operator()(const MineShardRequest&) const {
      return "mineshard";
    }
    const char* operator()(const PlanRequest&) const { return "plan"; }
    const char* operator()(const ShardSubmitRequest&) const {
      return "shardsubmit";
    }
    const char* operator()(const ShardWaitRequest&) const {
      return "shardwait";
    }
    const char* operator()(const ShardStopRequest&) const {
      return "shardstop";
    }
    const char* operator()(const RegisterRequest&) const { return "register"; }
    const char* operator()(const HeartbeatRequest&) const {
      return "heartbeat";
    }
    const char* operator()(const DrainRequest&) const { return "drain"; }
    const char* operator()(const WorkersRequest&) const { return "workers"; }
    const char* operator()(const CancelRequest&) const { return "cancel"; }
    const char* operator()(const JobsRequest&) const { return "jobs"; }
    const char* operator()(const WaitRequest&) const { return "wait"; }
    const char* operator()(const StatsRequest&) const { return "stats"; }
    const char* operator()(const MetricsRequest&) const { return "metrics"; }
    const char* operator()(const EvictRequest&) const { return "evict"; }
    const char* operator()(const StoreRequest&) const { return "store"; }
    const char* operator()(const HelpRequest&) const { return "help"; }
    const char* operator()(const QuitRequest&) const { return "quit"; }
  };
  return std::visit(Visitor{}, payload);
}

// ---------------------------------------------------------- error hygiene

std::string SanitizeErrorMessage(const std::string& message) {
  std::string out;
  out.reserve(message.size());
  std::size_t i = 0;
  while (i < message.size()) {
    const bool at_boundary =
        i == 0 || !(std::isalnum(static_cast<unsigned char>(message[i - 1])) ||
                    message[i - 1] == '.' || message[i - 1] == '_' ||
                    message[i - 1] == '-' || message[i - 1] == '/');
    if (message[i] != '/' || !at_boundary) {
      out += message[i++];
      continue;
    }
    // An absolute path token: consume up to whitespace/quote/paren and
    // keep only its last non-empty component.
    const std::size_t start = i;
    while (i < message.size()) {
      const char c = message[i];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '\'' ||
          c == '"' || c == ')' || c == '(' || c == ',' || c == ';') {
        break;
      }
      ++i;
    }
    std::string token = message.substr(start, i - start);
    while (!token.empty() && token.back() == '/') token.pop_back();
    const std::size_t slash = token.find_last_of('/');
    std::string base =
        slash == std::string::npos ? token : token.substr(slash + 1);
    out += base.empty() ? "/" : base;
  }
  return out;
}

Status SanitizeErrorStatus(const Status& status) {
  if (status.ok()) return status;
  return Status(status.code(), SanitizeErrorMessage(status.message()));
}

}  // namespace kplex
