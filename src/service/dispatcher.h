// ServiceDispatcher: the concurrency layer of the query service. One
// dispatcher owns a bounded job queue and N worker threads, all running
// queries through a single shared QueryEngine (and therefore one shared
// GraphCatalog and result cache). Clients submit a QueryRequest and get
// back a job id immediately; the job runs on the next free worker.
//
// Cancellation is cooperative and per-job: every job owns a
// std::atomic<bool> whose address is wired into the request's
// EnumOptions::cancel hook, which both enumerators poll every few
// thousand branch calls. Cancel() on a queued job retires it without
// ever running; on a running job it flips the flag and the engine
// unwinds within a few milliseconds.
//
// Thread-safety: every public method may be called from any thread.
// Workers never touch client streams — result delivery is pull-based
// (Wait/GetJob/Jobs), so callers keep single-writer output discipline.
// See docs/CONCURRENCY.md for the full threading model.

#ifndef KPLEX_SERVICE_DISPATCHER_H_
#define KPLEX_SERVICE_DISPATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/query_engine.h"
#include "util/status.h"

namespace kplex {

/// Lifecycle of a submitted job. Queued and running jobs are live;
/// done/cancelled/failed are terminal and never change again.
enum class JobState { kQueued, kRunning, kDone, kCancelled, kFailed };

/// Stable lowercase name ("queued", "running", ...).
const char* JobStateName(JobState state);

struct DispatcherOptions {
  /// Worker threads. 0 is clamped to 1 (serial execution, but still
  /// asynchronous submission).
  uint32_t workers = 1;
  /// Maximum number of *queued* (not yet running) jobs; submissions
  /// beyond it are rejected rather than buffered without bound.
  std::size_t queue_capacity = 256;
  /// How many *finished* jobs stay queryable through GetJob/Jobs/Wait.
  /// Older terminal jobs are pruned (oldest-finished first) so a
  /// long-lived service does not grow without bound; a pruned id then
  /// reports NotFound. Live (queued/running) jobs are never pruned.
  std::size_t finished_retention = 1024;
};

/// Point-in-time snapshot of one job (for `jobs`/`wait` output).
struct JobInfo {
  uint64_t id = 0;
  QueryRequest request;  ///< as submitted (its cancel pointer is unset)
  JobState state = JobState::kQueued;
  /// True once the job has been picked up by a worker — distinguishes
  /// a kCancelled job that never ran from one cancelled mid-run
  /// (whose result carries partial counts).
  bool started = false;
  /// Valid in kDone and in kCancelled when started.
  QueryResult result;
  /// Non-OK in kFailed.
  Status status;
};

class ServiceDispatcher {
 public:
  explicit ServiceDispatcher(QueryEngine& engine,
                             DispatcherOptions options = {});

  /// Cancels every unfinished job, then joins the workers. Running jobs
  /// unwind through their cancel flags, so destruction is prompt even
  /// mid-mine.
  ~ServiceDispatcher();

  ServiceDispatcher(const ServiceDispatcher&) = delete;
  ServiceDispatcher& operator=(const ServiceDispatcher&) = delete;

  /// Enqueues one query; returns its job id. FailedPrecondition when
  /// the queue is full or the dispatcher is shutting down. The
  /// request's own `cancel` pointer is ignored — cancellation goes
  /// through Cancel(id).
  StatusOr<uint64_t> Submit(const QueryRequest& request);

  /// Requests cancellation. A queued job is retired immediately
  /// (Wait returns a cancelled result without it ever running); a
  /// running job unwinds at the engine's next cancellation poll.
  /// NotFound for unknown ids, FailedPrecondition for terminal jobs.
  Status Cancel(uint64_t id);

  /// Requests a cooperative yield (work-stealing, sharding v2): flips
  /// the job's yield flag so a running sequential enumeration stops
  /// cleanly at the next seed boundary, reporting a complete answer for
  /// its covered prefix. A queued job is untouched (it will observe the
  /// flag the moment it starts and yield with an empty covered range).
  /// NotFound for unknown ids, FailedPrecondition for terminal jobs —
  /// the job finished whole, there is nothing left to steal.
  Status Yield(uint64_t id);

  /// Snapshot of one job. NotFound for unknown ids.
  StatusOr<JobInfo> GetJob(uint64_t id) const;

  /// Snapshots of all jobs, in submission order.
  std::vector<JobInfo> Jobs() const;

  /// Per-state tallies over retained jobs — cheap (no snapshot copies)
  /// for status lines that only need counts.
  struct JobCounts {
    uint64_t queued = 0;
    uint64_t running = 0;
    uint64_t done = 0;
    uint64_t cancelled = 0;
    uint64_t failed = 0;
  };
  JobCounts Counts() const;

  /// Blocks until the job reaches a terminal state, then returns its
  /// snapshot. NotFound for unknown ids.
  StatusOr<JobInfo> Wait(uint64_t id);

  /// Blocks until every submitted job is terminal.
  void Drain();

  uint32_t num_workers() const {
    return static_cast<uint32_t>(workers_.size());
  }

 private:
  // Jobs live in shared_ptrs so a worker can run one while Cancel /
  // GetJob / shutdown reach it through the map; the atomic gives the
  // cancel flag a stable address for EnumOptions::cancel.
  struct Job {
    uint64_t id = 0;
    QueryRequest request;
    std::atomic<bool> cancel{false};
    std::atomic<bool> yield{false};
    JobState state = JobState::kQueued;
    bool started = false;
    /// Monotonic enqueue tick (WallTimer::NowNanos) feeding the
    /// queue-wait histogram when a worker picks the job up.
    int64_t enqueued_nanos = 0;
    QueryResult result;
    Status status;
  };

  void WorkerLoop();
  JobInfo SnapshotLocked(const Job& job) const;
  void FinishCancelledLocked(Job& job);
  /// Records a terminal transition and prunes jobs beyond
  /// finished_retention (oldest-finished first).
  void RecordFinishedLocked(const Job& job);

  QueryEngine& engine_;
  const DispatcherOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stop
  std::condition_variable done_cv_;  // waiters: some job went terminal
  std::map<uint64_t, std::shared_ptr<Job>> jobs_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::deque<uint64_t> finished_order_;  // terminal job ids, oldest first
  uint64_t next_id_ = 1;
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace kplex

#endif  // KPLEX_SERVICE_DISPATCHER_H_
