#include "service/query_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "baselines/fp.h"
#include "baselines/listplex.h"
#include "core/max_kplex.h"
#include "core/sink.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_enumerator.h"
#include "store/result_store.h"
#include "util/timer.h"

namespace kplex {
namespace {

// Instrument handles are resolved once and cached: the registry lookup
// takes a mutex, the cached reference is a plain atomic bump. Engine
// metrics are process-global (all engines feed the same series).
Counter& QueriesTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_engine_queries_total");
  return counter;
}
Counter& CacheHitsTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_engine_cache_hits_total");
  return counter;
}
Counter& CacheMissesTotal() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "kplex_engine_cache_misses_total");
  return counter;
}
Counter& SingleFlightCollapsesTotal() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "kplex_engine_single_flight_collapses_total");
  return counter;
}
Histogram& CacheLookupSeconds() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "kplex_stage_cache_lookup_seconds");
  return histogram;
}
Histogram& CatalogLoadSeconds() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "kplex_stage_catalog_load_seconds");
  return histogram;
}
Histogram& EnumerateSeconds() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "kplex_stage_enumerate_seconds");
  return histogram;
}

// Counts, tracks the max size, and fingerprints in one pass; thread-safe
// like every core sink so both engines can share it.
class MeasuringSink : public ResultSink {
 public:
  void Emit(std::span<const VertexId> plex) override {
    counting_.Emit(plex);
    hashing_.Emit(plex);
  }

  uint64_t count() const { return counting_.count(); }
  std::size_t max_size() const { return counting_.max_size(); }
  uint64_t fingerprint() const { return hashing_.fingerprint(); }
  uint64_t xor_hash() const { return hashing_.xor_hash(); }

 private:
  CountingSink counting_;
  HashingSink hashing_;
};

}  // namespace

StatusOr<QueryAlgo> ParseQueryAlgo(const std::string& name) {
  if (name == "ours") return QueryAlgo::kOurs;
  if (name == "ours_p") return QueryAlgo::kOursP;
  if (name == "basic") return QueryAlgo::kBasic;
  if (name == "listplex") return QueryAlgo::kListPlex;
  if (name == "fp") return QueryAlgo::kFp;
  return Status::InvalidArgument("unknown algorithm '" + name +
                                 "' (expected ours, ours_p, basic, "
                                 "listplex, or fp)");
}

const char* QueryAlgoName(QueryAlgo algo) {
  switch (algo) {
    case QueryAlgo::kOurs: return "ours";
    case QueryAlgo::kOursP: return "ours_p";
    case QueryAlgo::kBasic: return "basic";
    case QueryAlgo::kListPlex: return "listplex";
    case QueryAlgo::kFp: return "fp";
  }
  return "?";
}

std::string QueryEngine::CanonicalSignature(const QueryRequest& request) {
  // `|ctcp=on` / `|seed=B:E` are appended only when set so every
  // pre-existing signature (and the cache entries stored under it)
  // stays byte-identical. A shard is a complete deterministic answer
  // for its range, so it caches under its own key.
  // The v4 selection options follow the same append-only rule; note
  // chunk_size is absent on purpose (pure presentation).
  return request.graph + "|k=" + std::to_string(request.k) +
         "|q=" + std::to_string(request.q) + "|algo=" +
         QueryAlgoName(request.algo) +
         "|max=" + std::to_string(request.max_results) +
         (request.use_ctcp ? "|ctcp=on" : "") +
         (request.HasSeedRange()
              ? "|seed=" + std::to_string(request.seed_begin) + ":" +
                    std::to_string(request.seed_end)
              : "") +
         (request.collect_bodies ? "|bodies=on" : "") +
         (request.filter_min_size > 0
              ? "|minsize=" + std::to_string(request.filter_min_size)
              : "") +
         (request.filter_max_size > 0
              ? "|maxsize=" + std::to_string(request.filter_max_size)
              : "") +
         (request.has_contain
              ? "|contain=" + std::to_string(request.contain)
              : "") +
         (request.top_k > 0 ? "|top=" + std::to_string(request.top_k) : "") +
         (request.maximum ? "|mode=maximum" : "") +
         (request.has_cursor
              ? "|cursor=" + std::to_string(request.cursor_seed) + ":" +
                    std::to_string(request.cursor_ordinal)
              : "");
}

StatusOr<QueryResult> QueryEngine::Run(const QueryRequest& request) {
  WallTimer timer;
  const uint64_t trace_id =
      request.trace_id != 0 ? request.trace_id : NextTraceId();
  QueriesTotal().Increment();
  // Resolve the graph's snapshot-section availability for the
  // signature. The tag is "unknown" until the first materialization, so
  // force one then (the first query was about to load the graph
  // anyway); afterwards it is sticky across evictions and this is a
  // map lookup.
  auto tag = catalog_.PrecomputeTag(request.graph);
  if (!tag.ok()) return tag.status();
  if (*tag == "unknown") {
    TraceSpan load_span(trace_id, "catalog_load", &CatalogLoadSeconds());
    load_span.AddAttr("graph", request.graph);
    auto materialized = catalog_.GetFull(request.graph);
    if (!materialized.ok()) return materialized.status();
    tag = catalog_.PrecomputeTag(request.graph);
    if (!tag.ok()) return tag.status();
  }
  const std::string signature =
      CanonicalSignature(request) + "|pre=" + *tag;
  // The disk tier participates only when a store is attached and the
  // request is store-shaped: cache=off bypasses both warm tiers, and
  // cursor requests resume a truncated run (their pages are never
  // persisted, so neither reads make sense). The graph content hash —
  // the other half of the store key — is resolved up front: the graph
  // is resident after the tag resolution above, so this is one linear
  // pass the first time and a map lookup after.
  ResultStore* store = store_.load(std::memory_order_acquire);
  const bool store_eligible =
      store != nullptr && request.use_cache && !request.has_cursor;
  uint64_t graph_hash = 0;
  if (store_eligible) {
    auto hash = catalog_.ContentHash(request.graph);
    if (!hash.ok()) return hash.status();
    graph_hash = *hash;
  }
  bool leader = false;
  {
    // The span covers the lock-protected lookup *and* any single-flight
    // wait behind a leader — both are time this query spent not
    // executing.
    TraceSpan lookup_span(trace_id, "cache_lookup", &CacheLookupSeconds());
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (cache_capacity_ > 0) {
        auto it = cache_.find(signature);
        if (request.use_cache && it != cache_.end()) {
          ++hits_;
          CacheHitsTotal().Increment();
          cache_lru_.Touch(signature);
          QueryResult result = it->second;
          result.from_cache = true;
          result.seconds = timer.ElapsedSeconds();
          return result;
        }
      }
      // cache=off requests bypass the lookup *and* the single-flight
      // wait: the caller explicitly asked for a fresh execution.
      if (!request.use_cache) break;
      auto flight = in_flight_.find(signature);
      if (flight == in_flight_.end()) break;
      // An identical query is already executing. Wait for its answer
      // instead of stampeding the same enumeration, but poll our own
      // cancel flag so a cancelled waiter unblocks promptly rather
      // than riding out the leader's run.
      std::shared_ptr<InFlight> shared = flight->second;
      while (!shared->done) {
        shared->cv.wait_for(lock, std::chrono::milliseconds(10));
        if (request.cancel != nullptr &&
            request.cancel->load(std::memory_order_relaxed)) {
          QueryResult result;
          result.cancelled = true;
          result.signature = signature;
          result.seconds = timer.ElapsedSeconds();
          return result;
        }
      }
      if (shared->has_result) {
        // The leader's complete answer, shared through the latch —
        // works even with the cache disabled.
        if (cache_capacity_ > 0) ++hits_;
        CacheHitsTotal().Increment();
        SingleFlightCollapsesTotal().Increment();
        QueryResult result = shared->result;
        result.from_cache = true;
        result.seconds = timer.ElapsedSeconds();
        return result;
      }
      // The leader's run was partial (or errored) and cannot be
      // shared; loop and become the leader ourselves.
    }
    if (cache_capacity_ > 0) ++misses_;
    CacheMissesTotal().Increment();
    if (request.use_cache) {
      in_flight_[signature] = std::make_shared<InFlight>();
      leader = true;
    }
  }

  // Memory miss: consult the disk tier before paying for enumeration.
  // Only the single-flight leader probes (waiters ride its answer), and
  // a hit back-fills the memory cache so the next repeat is a pure
  // memory hit.
  if (leader && store_eligible) {
    auto stored = store->Get(StoreKey{graph_hash, signature});
    if (stored.has_value()) {
      QueryResult result;
      result.num_plexes = stored->num_plexes;
      result.max_plex_size =
          static_cast<std::size_t>(stored->max_plex_size);
      result.fingerprint = stored->fingerprint;
      result.fingerprint_xor = stored->fingerprint_xor;
      result.total_seeds = stored->total_seeds;
      result.compute_seconds = stored->compute_seconds;
      result.reduction_precomputed = stored->reduction_precomputed;
      result.plexes = stored->plexes;
      // Only complete answers are ever persisted, so the covered range
      // is the clamped requested range (same arithmetic Execute uses).
      result.covered_begin = static_cast<uint32_t>(
          std::min<uint64_t>(request.seed_begin, stored->total_seeds));
      result.covered_end = static_cast<uint32_t>(
          std::min<uint64_t>(request.seed_end, stored->total_seeds));
      result.from_cache = true;
      result.from_store = true;
      result.signature = signature;
      result.seconds = timer.ElapsedSeconds();
      if (cache_capacity_ > 0) {
        // The cached copy drops the hit flags, like a computed entry:
        // they describe how *this* response was served, not the entry.
        QueryResult cached = result;
        cached.from_cache = false;
        cached.from_store = false;
        std::lock_guard<std::mutex> lock(mutex_);
        CacheInsertLocked(signature, cached);
      }
      FinishInFlight(signature, &result);
      return result;
    }
  }

  auto executed = Execute(request, trace_id);
  if (!executed.ok()) {
    if (leader) FinishInFlight(signature, nullptr);
    return executed.status();
  }
  QueryResult result = *std::move(executed);
  result.signature = signature;
  result.seconds = timer.ElapsedSeconds();

  // Partial answers (timeout/cancel) must not satisfy future queries.
  // A max_results-truncated run is cacheable only when sequential: the
  // sequential engine always truncates to the same deterministic
  // prefix, while parallel workers race for the cap and produce a
  // different subset each run.
  const bool nondeterministic_subset =
      result.stopped_early && request.threads > 0;
  // A yielded run covers only a prefix of its range — correct for the
  // steal that asked for it, wrong for anyone else with the same
  // signature, so it is neither cached nor single-flight-shared.
  const bool complete_answer = !result.timed_out && !result.cancelled &&
                               !result.yielded && !nondeterministic_subset;
  if (cache_capacity_ > 0 && complete_answer) {
    std::lock_guard<std::mutex> lock(mutex_);
    CacheInsertLocked(signature, result);
  }
  // Populate the disk tier on completion. Stricter than the memory
  // cache: a sequential max_results-truncated run is memory-cacheable
  // (deterministic prefix) but never persisted — the durable tier only
  // holds whole answers (docs/RESULT_STORE.md crash model).
  if (store_eligible && complete_answer && !result.stopped_early) {
    StoredResult stored;
    stored.num_plexes = result.num_plexes;
    stored.max_plex_size = result.max_plex_size;
    stored.fingerprint = result.fingerprint;
    stored.fingerprint_xor = result.fingerprint_xor;
    stored.total_seeds = result.total_seeds;
    stored.compute_seconds = result.compute_seconds;
    stored.reduction_precomputed = result.reduction_precomputed;
    stored.plexes = result.plexes;
    // Best-effort: a failed write (disk full, simulated crash) degrades
    // the warm tier, never the answer in hand.
    (void)store->Put(StoreKey{graph_hash, signature}, stored);
  }
  if (leader) {
    FinishInFlight(signature, complete_answer ? &result : nullptr);
  }
  return result;
}

void QueryEngine::CacheInsertLocked(const std::string& signature,
                                    const QueryResult& result) {
  cache_[signature] = result;
  cache_lru_.Touch(signature);
  while (cache_lru_.size() > cache_capacity_) {
    const std::string victim = cache_lru_.LeastRecent();
    cache_.erase(victim);
    cache_lru_.Erase(victim);
  }
}

void QueryEngine::FinishInFlight(const std::string& signature,
                                 const QueryResult* result) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = in_flight_.find(signature);
  if (it == in_flight_.end()) return;
  if (result != nullptr) {
    it->second->result = *result;
    it->second->has_result = true;
  }
  it->second->done = true;
  it->second->cv.notify_all();
  in_flight_.erase(it);
}

StatusOr<QueryResult> QueryEngine::Execute(const QueryRequest& request,
                                           uint64_t trace_id) {
  // Reject non-composing v4 selection options before any graph work.
  if (request.maximum &&
      (request.HasFilter() || request.top_k > 0 || request.has_cursor ||
       request.max_results > 0 || request.HasSeedRange())) {
    return Status::InvalidArgument(
        "mode=maximum answers with the single largest k-plex and does not "
        "compose with filters, top, cursors, max-results or seed ranges");
  }
  if (request.has_cursor) {
    if (request.threads > 0) {
      return Status::InvalidArgument(
          "cursor resume requires a sequential run (threads=0): parallel "
          "truncation does not produce a deterministic prefix");
    }
    if (request.algo == QueryAlgo::kFp) {
      return Status::InvalidArgument(
          "the fp baseline does not support cursors (it has its own "
          "search order)");
    }
    if (request.top_k > 0) {
      return Status::InvalidArgument(
          "cursor does not compose with top=K (top selects over the "
          "whole run, not a page of it)");
    }
    if (request.HasSeedRange()) {
      return Status::InvalidArgument(
          "cursor and seed-range are mutually exclusive (the cursor "
          "already positions the seed space)");
    }
  }
  StatusOr<CatalogGraph> resolved = Status::Internal("unreachable");
  {
    // Usually resident (the signature resolution above materialized
    // it), in which case this records a near-zero span.
    TraceSpan load_span(trace_id, "catalog_load", &CatalogLoadSeconds());
    load_span.AddAttr("graph", request.graph);
    resolved = catalog_.GetFull(request.graph);
  }
  if (!resolved.ok()) return resolved.status();
  const std::shared_ptr<const Graph>& graph = resolved->graph;
  // Holds the sections alive for the whole run (eviction-safe).
  const std::shared_ptr<const GraphPrecompute>& precompute =
      resolved->precompute;

  if (request.maximum) {
    // mode=maximum serves the maximum-k-plex solver: the answer is the
    // single largest k-plex (count 0 or 1), measured through the same
    // fingerprint algebra so clients can compare it like any result set.
    StatusOr<MaxKPlexResult> found = Status::Internal("unreachable");
    {
      TraceSpan enumerate_span(trace_id, "enumerate", &EnumerateSeconds());
      enumerate_span.AddAttr("graph", request.graph);
      enumerate_span.AddAttr("k", std::to_string(request.k));
      enumerate_span.AddAttr("mode", "maximum");
      found = FindMaximumKPlex(*graph, request.k);
    }
    if (!found.ok()) return found.status();
    QueryResult result;
    result.compute_seconds = found->seconds;
    std::vector<std::vector<VertexId>> bodies;
    if (found->found) {
      MeasuringSink measure;
      measure.Emit(std::span<const VertexId>(found->plex));
      result.num_plexes = 1;
      result.max_plex_size = found->plex.size();
      result.fingerprint = measure.fingerprint();
      result.fingerprint_xor = measure.xor_hash();
      bodies.push_back(std::move(found->plex));
    }
    result.plexes =
        std::make_shared<const std::vector<std::vector<VertexId>>>(
            std::move(bodies));
    return result;
  }

  EnumOptions options;
  switch (request.algo) {
    case QueryAlgo::kOurs:
      options = EnumOptions::Ours(request.k, request.q);
      break;
    case QueryAlgo::kOursP:
      options = EnumOptions::OursP(request.k, request.q);
      break;
    case QueryAlgo::kBasic:
      options = EnumOptions::Basic(request.k, request.q);
      break;
    case QueryAlgo::kListPlex:
      options = ListPlexOptions(request.k, request.q);
      break;
    case QueryAlgo::kFp:
      options = EnumOptions::Ours(request.k, request.q);  // validated only
      break;
  }
  options.max_results = request.max_results;
  options.time_limit_seconds = request.time_limit_seconds;
  options.use_ctcp_preprocess = request.use_ctcp;
  options.cancel = request.cancel;
  options.yield = request.yield;
  options.precompute = precompute.get();
  options.seed_range.begin = request.seed_begin;
  options.seed_range.end = request.seed_end;
  if (request.HasSeedRange() && request.algo == QueryAlgo::kFp) {
    // The fp driver has its own search order; a range over the
    // canonical degeneracy seed order means nothing to it.
    return Status::InvalidArgument(
        "the fp baseline does not support seed ranges");
  }

  // Cursor resume: restart at the cursor's seed, drop the emissions a
  // previous page already delivered, and lift the cap by the same
  // amount so max_results still bounds *this* page. max_results (and
  // the cursor ordinal) count raw enumeration emissions, before any
  // filter — a filtered page may therefore carry fewer than
  // max_results matches, but pagination stays exact.
  uint64_t skip = 0;
  if (request.has_cursor) {
    options.seed_range.begin = request.cursor_seed;
    skip = request.cursor_ordinal;
    if (options.max_results > 0) {
      if (options.max_results > UINT64_MAX - skip) {
        return Status::InvalidArgument(
            "cursor ordinal + max-results overflows");
      }
      options.max_results += skip;
    }
  }

  // The sink chain (innermost first): a measuring/collecting target,
  // wrapped by the server-side filter, wrapped by the cursor skip. The
  // measuring sink sits after the filter, so the reported count and
  // fingerprint describe exactly the served set.
  const bool want_bodies = request.collect_bodies || request.top_k > 0;
  MeasuringSink measuring;
  CollectingSink collecting;
  TopKSink topk(static_cast<std::size_t>(request.top_k));
  CallbackSink tee([&](std::span<const VertexId> plex) {
    measuring.Emit(plex);
    collecting.Emit(plex);
  });
  ResultSink* target = &measuring;
  if (request.top_k > 0) {
    target = &topk;
  } else if (want_bodies) {
    target = &tee;
  }
  PlexFilter filter;
  filter.min_size = request.filter_min_size;
  filter.max_size = request.filter_max_size;
  filter.has_contain = request.has_contain;
  filter.contain = request.contain;
  FilteringSink filtered(filter, *target);
  if (filter.IsActive()) target = &filtered;
  SkippingSink skipping(skip, *target);
  ResultSink& sink = skip > 0 ? static_cast<ResultSink&>(skipping) : *target;

  StatusOr<EnumResult> run = Status::Internal("unreachable");
  {
    TraceSpan enumerate_span(trace_id, "enumerate", &EnumerateSeconds());
    enumerate_span.AddAttr("graph", request.graph);
    enumerate_span.AddAttr("k", std::to_string(request.k));
    enumerate_span.AddAttr("q", std::to_string(request.q));
    enumerate_span.AddAttr("algo", QueryAlgoName(request.algo));
    if (request.algo == QueryAlgo::kFp) {
      run = FpEnumerate(*graph, request.k, request.q, sink);
    } else if (request.threads > 0) {
      ParallelOptions parallel;
      parallel.num_threads = request.threads;
      parallel.timeout_ms = request.tau_ms;
      run = ParallelEnumerateMaximalKPlexes(*graph, options, parallel, sink);
    } else {
      run = EnumerateMaximalKPlexes(*graph, options, sink);
    }
  }
  if (!run.ok()) return run.status();

  QueryResult result;
  if (request.top_k > 0) {
    // The selection is finalized only after the run; measure the
    // winners so count/max/fingerprint describe the served set.
    auto selected = topk.Selected();
    MeasuringSink selected_measure;
    for (const auto& plex : selected) {
      selected_measure.Emit(std::span<const VertexId>(plex));
    }
    result.num_plexes = selected_measure.count();
    result.max_plex_size = selected_measure.max_size();
    result.fingerprint = selected_measure.fingerprint();
    result.fingerprint_xor = selected_measure.xor_hash();
    result.plexes =
        std::make_shared<const std::vector<std::vector<VertexId>>>(
            std::move(selected));
  } else {
    result.num_plexes = measuring.count();
    result.max_plex_size = measuring.max_size();
    result.fingerprint = measuring.fingerprint();
    result.fingerprint_xor = measuring.xor_hash();
    if (want_bodies) {
      // Sequential runs keep enumeration order so cursor pages
      // concatenate; parallel emission order is racy, so sort for a
      // deterministic (cacheable) body list.
      result.plexes =
          std::make_shared<const std::vector<std::vector<VertexId>>>(
              request.threads > 0 ? collecting.SortedResults()
                                  : collecting.Results());
    }
    if (run->has_resume && request.threads == 0) {
      result.has_cursor = true;
      result.cursor_seed = run->resume_seed;
      result.cursor_ordinal = run->resume_ordinal;
    }
  }
  result.total_seeds = run->total_seeds;
  result.compute_seconds = run->seconds;
  result.timed_out = run->timed_out;
  result.stopped_early = run->stopped_early;
  result.cancelled = run->cancelled;
  result.yielded = run->yielded;
  // Covered range: computed from the request so the fp and parallel
  // drivers (which never yield and leave EnumResult's range unset)
  // still report full coverage of their clamped range.
  result.covered_begin = static_cast<uint32_t>(
      std::min<uint64_t>(request.seed_begin, run->total_seeds));
  result.covered_end =
      run->yielded ? run->covered_end
                   : static_cast<uint32_t>(std::min<uint64_t>(
                         request.seed_end, run->total_seeds));
  result.reduction_precomputed =
      run->counters.core_reductions_precomputed > 0;
  return result;
}

QueryEngine::CacheStats QueryEngine::cache_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return CacheStats{hits_, misses_, cache_.size(), cache_capacity_};
}

void QueryEngine::ClearCache() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& kv : cache_) cache_lru_.Erase(kv.first);
  cache_.clear();
}

void QueryEngine::InvalidateGraph(const std::string& graph_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string prefix = graph_name + "|";
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      cache_lru_.Erase(it->first);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace kplex
