// ShardCoordinator: the client-side fan-out of sharded mining v1. One
// coordinated mine splits the canonical seed space of a (graph, k, q,
// options) query into W half-open ranges, dispatches them as framed
// `mineshard` requests over N TCP connections to `serve --listen`
// workers, retries a shard whose connection failed mid-flight on
// another live worker, and folds the returned ShardResults into one
// verified total (core/sink.h MergeableResult: summed counts, XOR'd
// fingerprint halves — exactly the single-run fingerprint when the
// ranges partition the seed space, which the planner guarantees).
//
// Safety rails, in order:
//  1. Version handshake: every worker must negotiate protocol >=
//     kProtocolVersionSharding (a v1 server negotiates down and is
//     refused before any work is planned).
//  2. Admission hash: a planning probe (empty seed range) fetches one
//     worker's graph content hash + seed-space size; every subsequent
//     shard carries that hash and a worker holding different bytes
//     refuses with FAILED_PRECONDITION. No partial merges of
//     mismatched snapshots.
//  3. Retry only transport failures (disconnect/timeout — the shard
//     never completed anywhere); structured errors from a worker
//     (mismatched hash, bad options, failed job) abort the whole
//     coordination. A shard cut short (cancelled/timed out) is a hard
//     failure too: a partial shard can never enter a merge.
//
// Closing the coordinator's connections cancels whatever is still
// running server-side (the sessions' disconnect handling), so an
// aborted coordination does not leak work. See docs/SHARDING.md for
// the full model and a worked wire example.

#ifndef KPLEX_SERVICE_SHARD_COORDINATOR_H_
#define KPLEX_SERVICE_SHARD_COORDINATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "service/query_engine.h"
#include "util/status.h"

namespace kplex {

struct ShardCoordinatorOptions {
  /// The query to shard. Its seed_begin/seed_end are ignored — the
  /// coordinator plans the ranges. algo=fp is rejected (no seed-range
  /// support); use_cache is forwarded (warm shards are legitimate:
  /// same range, same bytes, same answer).
  QueryRequest query;
  /// Number of seed ranges to split the seed space into (>= 1).
  uint32_t shards = 4;
  /// Worker endpoints as "host:port". One framed connection is opened
  /// per entry; list an endpoint twice to keep two shards in flight on
  /// one worker process (pair with `serve --workers N`).
  std::vector<std::string> endpoints;
  /// Per-shard dispatch attempts (first try + retries) before the
  /// coordination fails.
  uint32_t max_attempts = 3;
  /// Send/receive timeout per socket operation, seconds. 0 (the
  /// default) means none — a *hung* (as opposed to dead) worker then
  /// blocks its lane until it answers. Set it (CLI: `--io-timeout S`,
  /// comfortably above the slowest expected shard) to turn a hung
  /// worker into a retryable transport failure.
  double io_timeout_seconds = 0;
};

/// One shard's final outcome (after any retries).
struct ShardOutcome {
  uint32_t index = 0;      ///< shard number in [0, shards)
  uint32_t begin = 0;      ///< seed range [begin, end)
  uint32_t end = 0;
  std::string endpoint;    ///< worker that completed it
  uint32_t attempts = 1;   ///< 1 = no retries
  uint64_t plexes = 0;
  uint64_t fingerprint = 0;  ///< per-shard composite (for logs)
  double seconds = 0;        ///< worker-side wall time
};

struct CoordinatedMineResult {
  uint64_t num_plexes = 0;
  uint64_t max_plex_size = 0;
  /// Merged composite fingerprint — equals a single-process run's.
  uint64_t fingerprint = 0;
  uint64_t fingerprint_xor = 0;
  /// The admission hash every worker matched.
  uint64_t content_hash = 0;
  /// Seed-space size the ranges partitioned.
  uint64_t total_seeds = 0;
  double seconds = 0;      ///< coordinator wall time, probe included
  uint32_t retries = 0;    ///< transport-failure re-dispatches
  std::vector<ShardOutcome> shards;  ///< in shard order
};

/// Checks that `query` is one a coordinated mine can answer exactly.
/// Coordinated mines are count-exact by construction (the merge algebra
/// needs every shard's complete result set), so options that truncate
/// or reshape the served set — max-results, results=stream, filters,
/// top=K, mode=maximum, cursors — are rejected with a structured
/// InvalidArgument explaining the incompatibility. Exposed so the CLI
/// can surface the explanation before opening any connection.
Status ValidateCoordinatedQuery(const QueryRequest& query);

/// Runs one coordinated sharded mine. Blocking; returns when every
/// shard has been merged or the coordination failed (no partial
/// results are ever returned). Validates with ValidateCoordinatedQuery.
StatusOr<CoordinatedMineResult> CoordinateShardedMine(
    const ShardCoordinatorOptions& options);

/// Splits "host:port,host:port,..." into endpoint strings, validating
/// each. Exposed for the CLI flag parser.
StatusOr<std::vector<std::string>> ParseEndpointList(
    const std::string& list);

}  // namespace kplex

#endif  // KPLEX_SERVICE_SHARD_COORDINATOR_H_
