#include "service/graph_catalog.h"

#include <algorithm>
#include <utility>

#include "bench_common/dataset_registry.h"
#include "graph/snapshot.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kplex {

Status GraphCatalog::RegisterFile(const std::string& name,
                                  const std::string& path) {
  Entry entry;
  entry.kind = SourceKind::kFile;
  entry.locator = path;
  return RegisterLocked(name, std::move(entry));
}

Status GraphCatalog::RegisterDataset(const std::string& name,
                                     const std::string& dataset_key) {
  Entry entry;
  entry.kind = SourceKind::kDataset;
  entry.locator = dataset_key;
  return RegisterLocked(name, std::move(entry));
}

Status GraphCatalog::RegisterGraph(const std::string& name, Graph graph) {
  Entry entry;
  entry.kind = SourceKind::kPinned;
  entry.num_vertices = graph.NumVertices();
  entry.num_edges = graph.NumEdges();
  entry.memory_bytes = graph.MemoryBytes();
  entry.loads = 1;
  entry.graph = std::make_shared<const Graph>(std::move(graph));
  return RegisterLocked(name, std::move(entry));
}

Status GraphCatalog::RegisterLocked(const std::string& name, Entry entry) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(name) > 0) {
    return Status::InvalidArgument("graph '" + name +
                                   "' is already registered");
  }
  entry.sequence = next_sequence_++;
  const bool resident = entry.graph != nullptr;
  const std::size_t bytes = entry.memory_bytes;
  entries_.emplace(name, std::move(entry));
  if (resident) {
    resident_bytes_ += bytes;
    lru_.Touch(name);
    EvictOverBudget(name);
  }
  return Status::Ok();
}

StatusOr<std::shared_ptr<const Graph>> GraphCatalog::Materialize(
    const std::string& name, Entry& entry) {
  WallTimer timer;
  StatusOr<Graph> loaded = Status::Internal("unreachable");
  switch (entry.kind) {
    case SourceKind::kFile:
      loaded = LoadGraphAuto(entry.locator);
      break;
    case SourceKind::kDataset:
      loaded = LoadDataset(entry.locator);
      break;
    case SourceKind::kPinned:
      return Status::Internal("pinned entry '" + name + "' lost its graph");
  }
  if (!loaded.ok()) return loaded.status();
  entry.num_vertices = loaded->NumVertices();
  entry.num_edges = loaded->NumEdges();
  entry.memory_bytes = loaded->MemoryBytes();
  entry.graph = std::make_shared<const Graph>(*std::move(loaded));
  ++entry.loads;
  entry.last_load_seconds = timer.ElapsedSeconds();
  resident_bytes_ += entry.memory_bytes;
  return entry.graph;
}

StatusOr<std::shared_ptr<const Graph>> GraphCatalog::Get(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no graph named '" + name + "' is registered");
  }
  Entry& entry = it->second;
  std::shared_ptr<const Graph> graph = entry.graph;
  if (graph == nullptr) {
    auto loaded = Materialize(name, entry);
    if (!loaded.ok()) return loaded.status();
    graph = *loaded;
  }
  lru_.Touch(name);
  EvictOverBudget(name);
  return graph;
}

void GraphCatalog::EvictOverBudget(const std::string& keep) {
  if (memory_budget_bytes_ == 0) return;
  // Walk from the LRU end, skipping the entry being served (evicting it
  // would defeat the Get) and pinned entries (nothing to reload from).
  while (resident_bytes_ > memory_budget_bytes_) {
    const std::string* victim = nullptr;
    for (auto it = lru_.order().rbegin(); it != lru_.order().rend(); ++it) {
      if (*it == keep) continue;
      const Entry& entry = entries_.at(*it);
      if (entry.kind == SourceKind::kPinned) continue;
      victim = &*it;
      break;
    }
    if (victim == nullptr) return;  // nothing evictable remains
    Entry& entry = entries_.at(*victim);
    KPLEX_LOG(Debug) << "catalog: evicting '" << *victim << "' ("
                     << entry.memory_bytes << " bytes) to meet budget";
    resident_bytes_ -= entry.memory_bytes;
    entry.memory_bytes = 0;
    entry.graph.reset();
    lru_.Erase(*victim);
  }
}

Status GraphCatalog::Evict(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no graph named '" + name + "' is registered");
  }
  Entry& entry = it->second;
  if (entry.kind == SourceKind::kPinned) {
    return Status::FailedPrecondition(
        "graph '" + name + "' is pinned (no source to reload from)");
  }
  if (entry.graph != nullptr) {
    resident_bytes_ -= entry.memory_bytes;
    entry.memory_bytes = 0;
    entry.graph.reset();
    lru_.Erase(name);
  }
  return Status::Ok();
}

Status GraphCatalog::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no graph named '" + name + "' is registered");
  }
  if (it->second.graph != nullptr) {
    resident_bytes_ -= it->second.memory_bytes;
    lru_.Erase(name);
  }
  entries_.erase(it);
  return Status::Ok();
}

bool GraphCatalog::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) > 0;
}

Status GraphCatalog::SaveSnapshotFor(const std::string& name,
                                     const std::string& path) {
  auto graph = Get(name);
  if (!graph.ok()) return graph.status();
  return SaveSnapshot(**graph, path);
}

std::vector<CatalogEntryInfo> GraphCatalog::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const std::pair<const std::string, Entry>*> ordered;
  ordered.reserve(entries_.size());
  for (const auto& kv : entries_) ordered.push_back(&kv);
  std::sort(ordered.begin(), ordered.end(), [](const auto* a, const auto* b) {
    return a->second.sequence < b->second.sequence;
  });
  std::vector<CatalogEntryInfo> out;
  out.reserve(ordered.size());
  for (const auto* kv : ordered) {
    const Entry& entry = kv->second;
    CatalogEntryInfo info;
    info.name = kv->first;
    switch (entry.kind) {
      case SourceKind::kFile:
        info.source = "file:" + entry.locator;
        break;
      case SourceKind::kDataset:
        info.source = "dataset:" + entry.locator;
        break;
      case SourceKind::kPinned:
        info.source = "pinned";
        break;
    }
    info.resident = entry.graph != nullptr;
    info.evictable = entry.kind != SourceKind::kPinned;
    info.num_vertices = entry.num_vertices;
    info.num_edges = entry.num_edges;
    info.memory_bytes = entry.memory_bytes;
    info.loads = entry.loads;
    info.last_load_seconds = entry.last_load_seconds;
    out.push_back(std::move(info));
  }
  return out;
}

std::size_t GraphCatalog::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

}  // namespace kplex
