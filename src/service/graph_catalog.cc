#include "service/graph_catalog.h"

#include <algorithm>
#include <utility>

#include "bench_common/dataset_registry.h"
#include "graph/stats.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kplex {
namespace {

Counter& LoadsTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_catalog_loads_total");
  return counter;
}
// Every resident copy dropped: budget eviction, explicit `evict`, or
// unregister.
Counter& EvictionsTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_catalog_evictions_total");
  return counter;
}
Gauge& OwnedBytesGauge() {
  static Gauge& gauge =
      MetricsRegistry::Global().GetGauge("kplex_catalog_owned_bytes");
  return gauge;
}
Gauge& MappedBytesGauge() {
  static Gauge& gauge =
      MetricsRegistry::Global().GetGauge("kplex_catalog_mapped_bytes");
  return gauge;
}

}  // namespace

Status GraphCatalog::RegisterFile(const std::string& name,
                                  const std::string& path) {
  Entry entry;
  entry.kind = SourceKind::kFile;
  entry.locator = path;
  return RegisterLocked(name, std::move(entry));
}

Status GraphCatalog::RegisterDataset(const std::string& name,
                                     const std::string& dataset_key) {
  Entry entry;
  entry.kind = SourceKind::kDataset;
  entry.locator = dataset_key;
  return RegisterLocked(name, std::move(entry));
}

Status GraphCatalog::RegisterGraph(const std::string& name, Graph graph) {
  Entry entry;
  entry.kind = SourceKind::kPinned;
  entry.num_vertices = graph.NumVertices();
  entry.num_edges = graph.NumEdges();
  entry.memory_bytes = graph.MemoryBytes();
  entry.mapped_bytes = graph.MappedBytes();
  entry.precompute_tag = "none";
  entry.loads = 1;
  entry.graph = std::make_shared<const Graph>(std::move(graph));
  return RegisterLocked(name, std::move(entry));
}

Status GraphCatalog::RegisterLocked(const std::string& name, Entry entry) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(name) > 0) {
    return Status::InvalidArgument("graph '" + name +
                                   "' is already registered");
  }
  entry.sequence = next_sequence_++;
  const bool resident = entry.graph != nullptr;
  const std::size_t bytes = entry.memory_bytes;
  const std::size_t mapped = entry.mapped_bytes;
  entries_.emplace(name, std::move(entry));
  if (resident) {
    resident_bytes_ += bytes;
    mapped_resident_bytes_ += mapped;
    LoadsTotal().Increment();
    OwnedBytesGauge().Set(static_cast<int64_t>(resident_bytes_));
    MappedBytesGauge().Set(static_cast<int64_t>(mapped_resident_bytes_));
    lru_.Touch(name);
    EvictOverBudget(name);
  }
  return Status::Ok();
}

std::map<std::string, GraphCatalog::Entry>::iterator
GraphCatalog::WaitWhileLoading(std::unique_lock<std::mutex>& lock,
                               const std::string& name) {
  auto it = entries_.find(name);
  while (it != entries_.end() && it->second.loading) {
    load_cv_.wait(lock);
    it = entries_.find(name);
  }
  return it;
}

StatusOr<CatalogGraph> GraphCatalog::MaterializeWithLock(
    std::unique_lock<std::mutex>& lock, const std::string& name) {
  auto it = WaitWhileLoading(lock, name);
  if (it == entries_.end()) {
    return Status::NotFound("no graph named '" + name + "' is registered");
  }
  if (it->second.graph != nullptr) {  // resident (maybe loaded while waiting)
    lru_.Touch(name);
    EvictOverBudget(name);
    return CatalogGraph{it->second.graph, it->second.precompute};
  }
  if (it->second.kind == SourceKind::kPinned) {
    return Status::Internal("pinned entry '" + name + "' lost its graph");
  }

  // Load outside the lock so a slow parse or snapshot map of one graph
  // never stalls Gets of other graphs (or stats/cancel traffic). The
  // loading latch makes concurrent Gets of *this* graph wait above,
  // and keeps mutators from erasing the entry mid-load.
  it->second.loading = true;
  const SourceKind kind = it->second.kind;
  const std::string locator = it->second.locator;
  lock.unlock();
  WallTimer timer;
  StatusOr<LoadedSnapshot> loaded = Status::Internal("unreachable");
  if (kind == SourceKind::kFile) {
    loaded = LoadGraphAutoFull(locator);
  } else {
    auto graph = LoadDataset(locator);
    if (graph.ok()) {
      LoadedSnapshot snapshot;
      snapshot.graph = *std::move(graph);
      loaded = std::move(snapshot);
    } else {
      loaded = graph.status();
    }
  }
  const double load_seconds = timer.ElapsedSeconds();
  lock.lock();

  // The entry is guaranteed to still exist: Evict/Unregister block on
  // the loading latch.
  Entry& entry = entries_.at(name);
  entry.loading = false;
  load_cv_.notify_all();
  if (!loaded.ok()) return loaded.status();
  entry.num_vertices = loaded->graph.NumVertices();
  entry.num_edges = loaded->graph.NumEdges();
  entry.precompute_tag = loaded->precompute.AvailabilityTag();
  // Fresh bytes, unknown hash: the source file may have changed since
  // the last load, and a stale hash would let a mismatched snapshot
  // through the shard admission check. ContentHash recomputes on the
  // next request.
  entry.content_hash = 0;
  entry.memory_bytes =
      loaded->graph.MemoryBytes() + loaded->precompute.MemoryBytes();
  entry.mapped_bytes = loaded->graph.MappedBytes();
  entry.graph = std::make_shared<const Graph>(std::move(loaded->graph));
  entry.precompute =
      loaded->precompute.empty()
          ? nullptr
          : std::make_shared<const GraphPrecompute>(
                std::move(loaded->precompute));
  ++entry.loads;
  entry.last_load_seconds = load_seconds;
  resident_bytes_ += entry.memory_bytes;
  mapped_resident_bytes_ += entry.mapped_bytes;
  LoadsTotal().Increment();
  OwnedBytesGauge().Set(static_cast<int64_t>(resident_bytes_));
  MappedBytesGauge().Set(static_cast<int64_t>(mapped_resident_bytes_));
  lru_.Touch(name);
  EvictOverBudget(name);
  return CatalogGraph{entry.graph, entry.precompute};
}

StatusOr<std::shared_ptr<const Graph>> GraphCatalog::Get(
    const std::string& name) {
  auto full = GetFull(name);
  if (!full.ok()) return full.status();
  return std::move(full->graph);
}

StatusOr<CatalogGraph> GraphCatalog::GetFull(const std::string& name) {
  std::unique_lock<std::mutex> lock(mutex_);
  return MaterializeWithLock(lock, name);
}

StatusOr<std::string> GraphCatalog::PrecomputeTag(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no graph named '" + name + "' is registered");
  }
  return it->second.precompute_tag;
}

StatusOr<uint64_t> GraphCatalog::ContentHash(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::NotFound("no graph named '" + name + "' is registered");
    }
    // Trust the cached hash only while the bytes that produced it are
    // resident: an evicted entry reloads from a source that may have
    // changed, so the hash must be recomputed with it (materialization
    // clears it).
    if (it->second.graph != nullptr && it->second.content_hash != 0) {
      return it->second.content_hash;
    }
  }
  // Pin the graph (materializing if needed) and hash outside the lock —
  // the O(m) pass must not stall unrelated catalog traffic. Two racing
  // first requests compute the same value; the second store is a no-op.
  auto graph = Get(name);
  if (!graph.ok()) return graph.status();
  const uint64_t hash = GraphContentHash(**graph);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no graph named '" + name + "' is registered");
  }
  it->second.content_hash = hash;
  return hash;
}

void GraphCatalog::DropResident(Entry& entry) {
  resident_bytes_ -= entry.memory_bytes;
  mapped_resident_bytes_ -= entry.mapped_bytes;
  entry.memory_bytes = 0;
  entry.mapped_bytes = 0;
  entry.graph.reset();
  entry.precompute.reset();
  EvictionsTotal().Increment();
  OwnedBytesGauge().Set(static_cast<int64_t>(resident_bytes_));
  MappedBytesGauge().Set(static_cast<int64_t>(mapped_resident_bytes_));
}

void GraphCatalog::EvictOverBudget(const std::string& keep) {
  if (memory_budget_bytes_ == 0) return;
  // Walk from the LRU end, skipping the entry being served (evicting it
  // would defeat the Get) and pinned entries (nothing to reload from).
  // Only owned bytes count: mapped pages are the kernel's to reclaim.
  while (resident_bytes_ > memory_budget_bytes_) {
    const std::string* victim = nullptr;
    for (auto it = lru_.order().rbegin(); it != lru_.order().rend(); ++it) {
      if (*it == keep) continue;
      const Entry& entry = entries_.at(*it);
      if (entry.kind == SourceKind::kPinned) continue;
      if (entry.memory_bytes == 0) continue;  // evicting frees nothing
      victim = &*it;
      break;
    }
    if (victim == nullptr) return;  // nothing evictable remains
    Entry& entry = entries_.at(*victim);
    KPLEX_LOG(Debug) << "catalog: evicting '" << *victim << "' ("
                     << entry.memory_bytes << " bytes) to meet budget";
    const std::string victim_name = *victim;
    DropResident(entry);
    lru_.Erase(victim_name);
  }
}

Status GraphCatalog::Evict(const std::string& name) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = WaitWhileLoading(lock, name);
  if (it == entries_.end()) {
    return Status::NotFound("no graph named '" + name + "' is registered");
  }
  Entry& entry = it->second;
  if (entry.kind == SourceKind::kPinned) {
    return Status::FailedPrecondition(
        "graph '" + name + "' is pinned (no source to reload from)");
  }
  if (entry.graph != nullptr) {
    DropResident(entry);
    lru_.Erase(name);
  }
  return Status::Ok();
}

Status GraphCatalog::Unregister(const std::string& name) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = WaitWhileLoading(lock, name);
  if (it == entries_.end()) {
    return Status::NotFound("no graph named '" + name + "' is registered");
  }
  if (it->second.graph != nullptr) {
    DropResident(it->second);
    lru_.Erase(name);
  }
  entries_.erase(it);
  return Status::Ok();
}

bool GraphCatalog::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) > 0;
}

Status GraphCatalog::SaveSnapshotFor(const std::string& name,
                                     const std::string& path,
                                     const SnapshotWriteOptions& options) {
  auto graph = Get(name);
  if (!graph.ok()) return graph.status();
  return SaveSnapshot(**graph, path, options);
}

std::vector<CatalogEntryInfo> GraphCatalog::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const std::pair<const std::string, Entry>*> ordered;
  ordered.reserve(entries_.size());
  for (const auto& kv : entries_) ordered.push_back(&kv);
  std::sort(ordered.begin(), ordered.end(), [](const auto* a, const auto* b) {
    return a->second.sequence < b->second.sequence;
  });
  std::vector<CatalogEntryInfo> out;
  out.reserve(ordered.size());
  for (const auto* kv : ordered) {
    const Entry& entry = kv->second;
    CatalogEntryInfo info;
    info.name = kv->first;
    switch (entry.kind) {
      case SourceKind::kFile:
        info.source = "file:" + entry.locator;
        break;
      case SourceKind::kDataset:
        info.source = "dataset:" + entry.locator;
        break;
      case SourceKind::kPinned:
        info.source = "pinned";
        break;
    }
    info.resident = entry.graph != nullptr;
    info.evictable = entry.kind != SourceKind::kPinned;
    info.mapped = entry.mapped_bytes > 0;
    info.num_vertices = entry.num_vertices;
    info.num_edges = entry.num_edges;
    info.memory_bytes = entry.memory_bytes;
    info.mapped_bytes = entry.mapped_bytes;
    info.precompute = entry.precompute_tag;
    info.content_hash = entry.content_hash;
    info.loads = entry.loads;
    info.last_load_seconds = entry.last_load_seconds;
    out.push_back(std::move(info));
  }
  return out;
}

std::size_t GraphCatalog::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

std::size_t GraphCatalog::MappedResidentBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mapped_resident_bytes_;
}

}  // namespace kplex
