// WireSession: the transport-facing face of a protocol session. The
// TCP server (and any future transport) drives connections purely
// through this interface, so the same accept loop, hangup watcher, and
// frame-limit handling serve both the worker protocol (ServiceSession
// over a shared ServiceApi) and the coordinator daemon's session
// (coord/coord_session.h). A transport owns one WireSession per
// connection, feeds it newline-delimited lines, and flushes whatever
// the session wrote to its output stream after each line.
//
// Threading contract: every method except CancelOutstandingJobs is
// called only from the connection's own serving thread.
// CancelOutstandingJobs is the one cross-thread entry point — a
// disconnect watcher fires it while the serving thread may be blocked
// inside a synchronous command.

#ifndef KPLEX_SERVICE_WIRE_SESSION_H_
#define KPLEX_SERVICE_WIRE_SESSION_H_

#include <string>

#include "service/protocol.h"

namespace kplex {

class WireSession {
 public:
  virtual ~WireSession() = default;

  /// Executes one wire line (text or framed, per the negotiated mode)
  /// and writes any response to the session's output stream. Returns
  /// false once the session is over (`quit`).
  virtual bool ExecuteLine(const std::string& line) = 0;

  /// The negotiated wire mode — transports need it to phrase their own
  /// errors (e.g. the frame-size limit) in the shape the client is
  /// parsing.
  virtual WireMode mode() const = 0;

  /// Requests cancellation of the session's outstanding work on
  /// disconnect. Must be safe to call from a thread other than the
  /// serving thread, and concurrently with ExecuteLine.
  virtual void CancelOutstandingJobs() = 0;
};

}  // namespace kplex

#endif  // KPLEX_SERVICE_WIRE_SESSION_H_
