#include "service/tcp_client.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define KPLEX_TCP_CLIENT_SOCKETS 1
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#endif

namespace kplex {

TcpClient::~TcpClient() { Close(); }

TcpClient::TcpClient(TcpClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

TcpClient& TcpClient::operator=(TcpClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

#if KPLEX_TCP_CLIENT_SOCKETS

void TcpClient::Shutdown() {
  std::lock_guard<std::mutex> lock(fd_mutex_);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpClient::Close() {
  std::lock_guard<std::mutex> lock(fd_mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status TcpClient::Connect(const std::string& host, uint16_t port,
                          double timeout_seconds) {
  Close();
  // getaddrinfo resolves both numeric addresses and names; restrict to
  // IPv4/IPv6 stream sockets.
  addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string port_text = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_text.c_str(), &hints,
                               &resolved);
  if (rc != 0) {
    return Status::IoError("cannot resolve '" + host +
                           "': " + ::gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses for '" + host + "'");
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IoError(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Status::IoError("cannot connect to " + host + ":" + port_text +
                             ": " + std::strerror(errno));
      ::close(fd);
      continue;
    }
    fd_ = fd;
    break;
  }
  ::freeaddrinfo(resolved);
  if (fd_ < 0) return last;

  if (timeout_seconds > 0) {
    timeval tv = {};
    tv.tv_sec = static_cast<time_t>(timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  // One-line requests deserve immediate segments.
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
#if defined(SO_NOSIGPIPE)
  // No MSG_NOSIGNAL on macOS: suppress SIGPIPE at the socket level so
  // a write to a dead worker returns EPIPE (a retryable IO_ERROR for
  // the coordinator) instead of killing the process.
  ::setsockopt(fd_, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
  return Status::Ok();
}

Status TcpClient::SendLine(const std::string& line) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  const std::string bytes = line + "\n";
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
#if defined(MSG_NOSIGNAL)
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      const bool timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
      Close();
      return timed_out
                 ? Status::TimedOut("send timed out")
                 : Status::IoError(std::string("send: ") +
                                   std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

StatusOr<std::string> TcpClient::ReadLine() {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  char chunk[4096];
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Close();
      return Status::TimedOut("receive timed out");
    }
    if (n <= 0) {
      Close();
      return Status::IoError(n == 0 ? "connection closed by the server"
                                    : std::string("recv: ") +
                                          std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

#else  // !KPLEX_TCP_CLIENT_SOCKETS

void TcpClient::Shutdown() {}

void TcpClient::Close() { buffer_.clear(); }

Status TcpClient::Connect(const std::string&, uint16_t, double) {
  return Status::Unimplemented("TCP sockets are unavailable on this platform");
}

Status TcpClient::SendLine(const std::string&) {
  return Status::FailedPrecondition("client is not connected");
}

StatusOr<std::string> TcpClient::ReadLine() {
  return Status::FailedPrecondition("client is not connected");
}

#endif  // KPLEX_TCP_CLIENT_SOCKETS

}  // namespace kplex
