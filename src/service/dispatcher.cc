#include "service/dispatcher.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace kplex {
namespace {

Gauge& QueueDepthGauge() {
  static Gauge& gauge =
      MetricsRegistry::Global().GetGauge("kplex_dispatcher_queue_depth");
  return gauge;
}
Counter& JobsSubmittedTotal() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "kplex_dispatcher_jobs_submitted_total");
  return counter;
}
Counter& JobsCancelledTotal() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "kplex_dispatcher_jobs_cancelled_total");
  return counter;
}
Histogram& QueueWaitSeconds() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "kplex_dispatcher_queue_wait_seconds");
  return histogram;
}
Histogram& JobRunSeconds() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "kplex_dispatcher_job_run_seconds");
  return histogram;
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

ServiceDispatcher::ServiceDispatcher(QueryEngine& engine,
                                     DispatcherOptions options)
    : engine_(engine), options_(options) {
  const uint32_t workers = std::max<uint32_t>(1, options.workers);
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServiceDispatcher::~ServiceDispatcher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    // Retire queued jobs without running them and flip the cancel flag
    // of running ones so their engines unwind; workers then drain out.
    for (const auto& job : queue_) FinishCancelledLocked(*job);
    queue_.clear();
    QueueDepthGauge().Set(0);
    for (auto& kv : jobs_) {
      if (kv.second->state == JobState::kRunning) {
        kv.second->cancel.store(true, std::memory_order_relaxed);
      }
    }
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ServiceDispatcher::FinishCancelledLocked(Job& job) {
  JobsCancelledTotal().Increment();
  job.state = JobState::kCancelled;
  job.result = QueryResult{};
  job.result.cancelled = true;
  job.result.signature = QueryEngine::CanonicalSignature(job.request);
  RecordFinishedLocked(job);
}

void ServiceDispatcher::RecordFinishedLocked(const Job& job) {
  // States never regress, so each job lands here exactly once.
  finished_order_.push_back(job.id);
  while (finished_order_.size() > options_.finished_retention) {
    jobs_.erase(finished_order_.front());
    finished_order_.pop_front();
  }
}

StatusOr<uint64_t> ServiceDispatcher::Submit(const QueryRequest& request) {
  std::shared_ptr<Job> job = std::make_shared<Job>();
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      return Status::FailedPrecondition("dispatcher is shutting down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      return Status::FailedPrecondition(
          "job queue is full (" + std::to_string(queue_.size()) +
          " jobs pending)");
    }
    id = next_id_++;
    job->id = id;
    job->request = request;
    job->request.cancel = nullptr;  // cancellation goes through Cancel(id)
    job->request.yield = nullptr;   // stealing goes through Yield(id)
    if (job->request.trace_id == 0) {
      // The span trail starts at submission: queue wait, run time, and
      // the engine's stage spans all correlate under this id.
      job->request.trace_id = NextTraceId();
    }
    job->enqueued_nanos = WallTimer::NowNanos();
    jobs_.emplace(id, job);
    queue_.push_back(std::move(job));
    QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
  }
  JobsSubmittedTotal().Increment();
  work_cv_.notify_one();
  return id;
}

void ServiceDispatcher::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::shared_ptr<Job> job = queue_.front();
    queue_.pop_front();
    QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
    if (job->cancel.load(std::memory_order_relaxed)) {
      // Cancelled while queued (Cancel() usually retires these itself;
      // this covers a flag flipped in the submission race window).
      FinishCancelledLocked(*job);
      done_cv_.notify_all();
      continue;
    }
    job->state = JobState::kRunning;
    job->started = true;
    QueryRequest request = job->request;
    request.cancel = &job->cancel;
    request.yield = &job->yield;
    const double queue_wait_seconds =
        static_cast<double>(WallTimer::NowNanos() - job->enqueued_nanos) *
        1e-9;
    lock.unlock();
    // Span emission does stderr IO; keep it outside the dispatcher lock.
    RecordSpan(request.trace_id, "queue_wait", queue_wait_seconds,
               &QueueWaitSeconds());
    WallTimer run_timer;
    StatusOr<QueryResult> run = engine_.Run(request);
    RecordSpan(request.trace_id, "job_run", run_timer.ElapsedSeconds(),
               &JobRunSeconds());
    lock.lock();
    if (run.ok()) {
      job->result = *std::move(run);
      job->state = job->result.cancelled ? JobState::kCancelled
                                         : JobState::kDone;
    } else {
      job->status = run.status();
      job->state = JobState::kFailed;
    }
    RecordFinishedLocked(*job);
    done_cv_.notify_all();
  }
}

Status ServiceDispatcher::Yield(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  Job& job = *it->second;
  switch (job.state) {
    case JobState::kQueued:
    case JobState::kRunning:
      job.yield.store(true, std::memory_order_relaxed);
      return Status::Ok();
    case JobState::kDone:
    case JobState::kCancelled:
    case JobState::kFailed:
      return Status::FailedPrecondition(
          "job " + std::to_string(id) + " already finished (" +
          JobStateName(job.state) + ")");
  }
  return Status::Ok();
}

Status ServiceDispatcher::Cancel(uint64_t id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return Status::NotFound("no job with id " + std::to_string(id));
    }
    job = it->second;
    switch (job->state) {
      case JobState::kQueued: {
        job->cancel.store(true, std::memory_order_relaxed);
        auto pos = std::find(queue_.begin(), queue_.end(), job);
        if (pos != queue_.end()) queue_.erase(pos);
        QueueDepthGauge().Set(static_cast<int64_t>(queue_.size()));
        FinishCancelledLocked(*job);
        break;
      }
      case JobState::kRunning:
        job->cancel.store(true, std::memory_order_relaxed);
        JobsCancelledTotal().Increment();
        return Status::Ok();
      case JobState::kDone:
      case JobState::kCancelled:
      case JobState::kFailed:
        return Status::FailedPrecondition(
            "job " + std::to_string(id) + " already finished (" +
            JobStateName(job->state) + ")");
    }
  }
  done_cv_.notify_all();
  return Status::Ok();
}

JobInfo ServiceDispatcher::SnapshotLocked(const Job& job) const {
  JobInfo info;
  info.id = job.id;
  info.request = job.request;
  info.state = job.state;
  info.started = job.started;
  info.result = job.result;
  info.status = job.status;
  return info;
}

StatusOr<JobInfo> ServiceDispatcher::GetJob(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  return SnapshotLocked(*it->second);
}

std::vector<JobInfo> ServiceDispatcher::Jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& kv : jobs_) out.push_back(SnapshotLocked(*kv.second));
  return out;
}

ServiceDispatcher::JobCounts ServiceDispatcher::Counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JobCounts counts;
  for (const auto& kv : jobs_) {
    switch (kv.second->state) {
      case JobState::kQueued: ++counts.queued; break;
      case JobState::kRunning: ++counts.running; break;
      case JobState::kDone: ++counts.done; break;
      case JobState::kCancelled: ++counts.cancelled; break;
      case JobState::kFailed: ++counts.failed; break;
    }
  }
  return counts;
}

StatusOr<JobInfo> ServiceDispatcher::Wait(uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  std::shared_ptr<Job> job = it->second;
  done_cv_.wait(lock, [&] {
    return job->state != JobState::kQueued &&
           job->state != JobState::kRunning;
  });
  return SnapshotLocked(*job);
}

void ServiceDispatcher::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] {
    for (const auto& kv : jobs_) {
      if (kv.second->state == JobState::kQueued ||
          kv.second->state == JobState::kRunning) {
        return false;
      }
    }
    return true;
  });
}

}  // namespace kplex
