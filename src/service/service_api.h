// ServiceApi: the execution facade of the query service. One ServiceApi
// owns the long-lived service state — a GraphCatalog, a QueryEngine,
// and a ServiceDispatcher — and executes typed protocol requests
// (service/protocol.h) against it, returning typed responses. Every
// front end is a thin adapter over this class: ServiceSession parses
// the text/framed wire into Requests and formats the Responses back;
// the TCP server runs one such adapter per connection over a *shared*
// ServiceApi, which is what makes graphs, cached results, and the job
// queue visible to every client of one serve process.
//
// Error contract: Execute never throws and never returns free-form
// text. Failures come back as ErrorResponse carrying a structured
// Status whose message has been scrubbed of absolute filesystem paths
// (SanitizeErrorStatus) — a network client learns what went wrong, not
// how the server's disk is laid out.
//
// Thread-safety: Execute may be called from any number of threads
// concurrently (the TCP server does); all state it touches lives in
// the thread-safe catalog/engine/dispatcher underneath.

#ifndef KPLEX_SERVICE_SERVICE_API_H_
#define KPLEX_SERVICE_SERVICE_API_H_

#include <cstdint>
#include <memory>
#include <string>

#include "service/dispatcher.h"
#include "service/graph_catalog.h"
#include "service/protocol.h"
#include "service/query_engine.h"
#include "store/result_store.h"

namespace kplex {

struct ServiceApiOptions {
  /// Catalog memory budget in bytes (0 = unlimited).
  std::size_t memory_budget_bytes = 0;
  /// Result-cache capacity in entries (0 disables caching).
  std::size_t result_cache_capacity = 64;
  /// Dispatcher worker threads. 1 (the default) preserves serial query
  /// semantics; N > 1 lets submitted jobs run concurrently over the
  /// shared catalog. 0 is clamped to 1.
  uint32_t workers = 1;
  /// Durable result-store directory (`serve --store DIR`). Empty
  /// disables the disk tier. See store/result_store.h.
  std::string store_dir;
  /// Result-store LRU byte budget (0 = unlimited).
  uint64_t store_byte_budget = 0;
};

class ServiceApi {
 public:
  explicit ServiceApi(ServiceApiOptions options = {});

  ServiceApi(const ServiceApi&) = delete;
  ServiceApi& operator=(const ServiceApi&) = delete;

  /// Executes one typed request. The response mirrors the request id;
  /// failures come back as ErrorResponse (sanitized Status), never an
  /// exception.
  Response Execute(const Request& request);

  /// Cancels every queued/running dispatcher job (server shutdown).
  void CancelAllJobs();

  /// Shard admission + submission: verifies the coordinator's expected
  /// content hash against this worker's graph (FAILED_PRECONDITION with
  /// both hashes on a mismatched snapshot) and enqueues the shard's
  /// query. Used by the MineShardRequest handler and by ServiceSession,
  /// which must record the job id *before* blocking in Wait so a
  /// dropped coordinator connection can cancel the running shard.
  struct ShardSubmission {
    uint64_t job = 0;
    uint64_t content_hash = 0;  ///< this worker's hash of the graph
  };
  StatusOr<ShardSubmission> SubmitShard(const MineShardRequest& shard);

  GraphCatalog& catalog() { return catalog_; }
  QueryEngine& engine() { return engine_; }
  ServiceDispatcher& dispatcher() { return *dispatcher_; }
  /// The durable result store, or nullptr when no store_dir was given
  /// (or it failed to open — see store_status()).
  ResultStore* store() { return store_.get(); }
  /// Outcome of opening options.store_dir: Ok when the store is up (or
  /// none was requested), the open error otherwise. The ServiceApi
  /// itself keeps running without a disk tier on failure; callers that
  /// treat a broken store as fatal (kplex_cli serve) check this after
  /// construction.
  const Status& store_status() const { return store_status_; }

 private:
  ResponsePayload Handle(const HelloRequest& hello);
  ResponsePayload Handle(const LoadRequest& load);
  ResponsePayload Handle(const DatasetRequest& dataset);
  ResponsePayload Handle(const SnapshotRequest& snapshot);
  ResponsePayload Handle(const MineRequest& mine);
  ResponsePayload Handle(const SubmitRequest& submit);
  ResponsePayload Handle(const MineShardRequest& shard);
  ResponsePayload Handle(const PlanRequest& plan);
  ResponsePayload Handle(const ShardSubmitRequest& shard);
  ResponsePayload Handle(const ShardWaitRequest& wait);
  ResponsePayload Handle(const ShardStopRequest& stop);
  ResponsePayload Handle(const RegisterRequest&);
  ResponsePayload Handle(const HeartbeatRequest&);
  ResponsePayload Handle(const DrainRequest&);
  ResponsePayload Handle(const WorkersRequest&);
  ResponsePayload Handle(const CancelRequest& cancel);
  ResponsePayload Handle(const JobsRequest&);
  ResponsePayload Handle(const WaitRequest& wait);
  ResponsePayload Handle(const StatsRequest&);
  ResponsePayload Handle(const MetricsRequest& metrics);
  ResponsePayload Handle(const EvictRequest& evict);
  ResponsePayload Handle(const StoreRequest& store);
  ResponsePayload Handle(const HelpRequest&);
  ResponsePayload Handle(const QuitRequest&);

  /// The stats/store view of store_ (enabled=false when detached).
  StoreStatusInfo StoreInfo();

  // Declared before the engine so the engine's raw store pointer can
  // never dangle: members destroy in reverse order, and the dispatcher
  // (whose workers are the only concurrent callers) is torn down first.
  std::unique_ptr<ResultStore> store_;
  Status store_status_ = Status::Ok();
  GraphCatalog catalog_;
  QueryEngine engine_;
  // Pointer so the members above (which the dispatcher's workers reach
  // through the engine) are fully constructed before any worker starts;
  // the declaration order here is the destruction-order guarantee.
  std::unique_ptr<ServiceDispatcher> dispatcher_;
};

}  // namespace kplex

#endif  // KPLEX_SERVICE_SERVICE_API_H_
