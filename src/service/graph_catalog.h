// GraphCatalog: the resident graph store of the query service. Named
// graphs are registered against a source (edge-list file, snapshot file,
// or dataset_registry key) and materialized lazily on first use; loaded
// graphs are handed out as shared_ptr so in-flight queries keep a graph
// alive across an eviction. A memory budget bounds the resident set:
// when exceeded, least-recently-used reloadable graphs are dropped (they
// re-materialize transparently on the next Get).

#ifndef KPLEX_SERVICE_GRAPH_CATALOG_H_
#define KPLEX_SERVICE_GRAPH_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "service/lru.h"
#include "util/status.h"

namespace kplex {

/// Point-in-time description of one catalog entry (for `stats` output).
struct CatalogEntryInfo {
  std::string name;
  std::string source;         ///< e.g. "file:web.txt", "dataset:karate"
  bool resident = false;      ///< currently materialized
  bool evictable = false;     ///< can be dropped and re-materialized
  std::size_t num_vertices = 0;  ///< 0 until first load
  std::size_t num_edges = 0;
  std::size_t memory_bytes = 0;  ///< CSR bytes while resident
  uint64_t loads = 0;            ///< materializations (reloads included)
  double last_load_seconds = 0;  ///< wall time of the last materialization
};

class GraphCatalog {
 public:
  /// `memory_budget_bytes` bounds the summed CSR bytes of resident
  /// graphs; 0 means unlimited. The budget is best-effort: a single
  /// graph larger than the budget still loads (nothing else stays
  /// resident beside it).
  explicit GraphCatalog(std::size_t memory_budget_bytes = 0)
      : memory_budget_bytes_(memory_budget_bytes) {}

  /// Registers a graph backed by a file; snapshots are auto-detected by
  /// magic, anything else parses as a SNAP edge list. The file is not
  /// touched until the first Get.
  Status RegisterFile(const std::string& name, const std::string& path);

  /// Registers a graph backed by a dataset_registry key.
  Status RegisterDataset(const std::string& name,
                         const std::string& dataset_key);

  /// Inserts an already-built graph. Pinned: it has no source to reload
  /// from, so it is never evicted (and counts toward the budget).
  Status RegisterGraph(const std::string& name, Graph graph);

  /// Returns the named graph, materializing it if needed. Marks the
  /// entry most recently used and evicts LRU entries while over budget.
  StatusOr<std::shared_ptr<const Graph>> Get(const std::string& name);

  /// Drops the resident copy of a reloadable entry (the registration
  /// stays; the next Get reloads). FailedPrecondition for pinned
  /// entries, NotFound for unknown names.
  Status Evict(const std::string& name);

  /// Removes the entry entirely.
  Status Unregister(const std::string& name);

  bool Contains(const std::string& name) const;

  /// Writes a snapshot of the named graph (materializing it if needed),
  /// so subsequent sessions can register the snapshot instead of the
  /// original edge list.
  Status SaveSnapshotFor(const std::string& name, const std::string& path);

  /// Entries in registration order.
  std::vector<CatalogEntryInfo> Entries() const;

  /// Summed CSR bytes of resident graphs.
  std::size_t ResidentBytes() const;
  std::size_t MemoryBudgetBytes() const { return memory_budget_bytes_; }

 private:
  enum class SourceKind { kFile, kDataset, kPinned };

  struct Entry {
    SourceKind kind;
    std::string locator;  // path or dataset key; empty for kPinned
    std::shared_ptr<const Graph> graph;  // null while evicted
    std::size_t num_vertices = 0;
    std::size_t num_edges = 0;
    std::size_t memory_bytes = 0;
    uint64_t loads = 0;
    double last_load_seconds = 0;
    uint64_t sequence = 0;  // registration order for Entries()
  };

  Status RegisterLocked(const std::string& name, Entry entry);
  StatusOr<std::shared_ptr<const Graph>> Materialize(const std::string& name,
                                                     Entry& entry);
  void EvictOverBudget(const std::string& keep);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  LruList<std::string> lru_;  // resident entries only
  std::size_t memory_budget_bytes_;
  std::size_t resident_bytes_ = 0;
  uint64_t next_sequence_ = 0;
};

}  // namespace kplex

#endif  // KPLEX_SERVICE_GRAPH_CATALOG_H_
