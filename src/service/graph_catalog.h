// GraphCatalog: the resident graph store of the query service. Named
// graphs are registered against a source (edge-list file, snapshot file,
// or dataset_registry key) and materialized lazily on first use; loaded
// graphs are handed out as shared_ptr so in-flight queries keep a graph
// alive across an eviction. A memory budget bounds the resident set:
// when exceeded, least-recently-used reloadable graphs are dropped (they
// re-materialize transparently on the next Get).
//
// Memory accounting distinguishes two kinds of resident bytes:
//  - owned bytes: private heap (parsed edge lists, legacy snapshots,
//    in-process-computed precompute). These count against the budget.
//  - mapped bytes: mmap'ed v2 snapshot pages served zero-copy — the
//    CSR and any precompute sections, which are views into the same
//    whole-file mapping and count here, not as owned heap. The
//    kernel reclaims clean mapped pages under pressure, so they do NOT
//    count against the budget — that is exactly how many mapped graphs
//    share one budget. They are tracked and reported separately.
//
// Thread-safety: every public method may be called from any thread.
// Graphs are handed out as shared_ptr pins — eviction only drops the
// catalog's own reference, so a mapped snapshot is never unmapped while
// an in-flight query still reads it (the mapping is released when the
// last pin goes away). Materialization runs *outside* the catalog lock
// with a per-entry loading latch: concurrent Gets of the same graph
// load it exactly once (the others wait), and loads of different
// graphs proceed in parallel. See docs/CONCURRENCY.md.

#ifndef KPLEX_SERVICE_GRAPH_CATALOG_H_
#define KPLEX_SERVICE_GRAPH_CATALOG_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/precompute.h"
#include "graph/snapshot.h"
#include "service/lru.h"
#include "util/status.h"

namespace kplex {

/// Point-in-time description of one catalog entry (for `stats` output).
struct CatalogEntryInfo {
  std::string name;
  std::string source;         ///< e.g. "file:web.txt", "dataset:karate"
  bool resident = false;      ///< currently materialized
  bool evictable = false;     ///< can be dropped and re-materialized
  bool mapped = false;        ///< CSR served zero-copy from an mmap
  std::size_t num_vertices = 0;  ///< 0 until first load
  std::size_t num_edges = 0;
  std::size_t memory_bytes = 0;  ///< owned heap bytes while resident
  std::size_t mapped_bytes = 0;  ///< mmap'ed bytes while resident
  /// Precompute-section availability ("none", "order+core", ...);
  /// sticky after the first load so stats stay meaningful when evicted.
  std::string precompute = "unknown";
  /// Content hash of the resident bytes (graph/stats.h); 0 until the
  /// first ContentHash() request computes it. Reset by a reload (the
  /// source may have changed) and recomputed on the next request. This
  /// is the value a sharding coordinator matches workers against.
  uint64_t content_hash = 0;
  uint64_t loads = 0;            ///< materializations (reloads included)
  double last_load_seconds = 0;  ///< wall time of the last materialization
};

/// A materialized graph plus whatever precompute sections its snapshot
/// carried (null when none).
struct CatalogGraph {
  std::shared_ptr<const Graph> graph;
  std::shared_ptr<const GraphPrecompute> precompute;
};

class GraphCatalog {
 public:
  /// `memory_budget_bytes` bounds the summed *owned* CSR bytes of
  /// resident graphs; 0 means unlimited. Mapped snapshot bytes are
  /// exempt (see the file comment). The budget is best-effort: a single
  /// graph larger than the budget still loads (nothing else stays
  /// resident beside it).
  explicit GraphCatalog(std::size_t memory_budget_bytes = 0)
      : memory_budget_bytes_(memory_budget_bytes) {}

  /// Registers a graph backed by a file; snapshots are auto-detected by
  /// magic, anything else parses as a SNAP edge list. The file is not
  /// touched until the first Get.
  Status RegisterFile(const std::string& name, const std::string& path);

  /// Registers a graph backed by a dataset_registry key.
  Status RegisterDataset(const std::string& name,
                         const std::string& dataset_key);

  /// Inserts an already-built graph. Pinned: it has no source to reload
  /// from, so it is never evicted (and counts toward the budget).
  Status RegisterGraph(const std::string& name, Graph graph);

  /// Returns the named graph, materializing it if needed. Marks the
  /// entry most recently used and evicts LRU entries while over budget.
  StatusOr<std::shared_ptr<const Graph>> Get(const std::string& name);

  /// Get plus the precompute sections the snapshot carried (null
  /// precompute when the source has none).
  StatusOr<CatalogGraph> GetFull(const std::string& name);

  /// Precompute availability tag for the signature of queries against
  /// `name` ("unknown" until the first materialization, then sticky —
  /// eviction does not reset it). NotFound for unknown names.
  StatusOr<std::string> PrecomputeTag(const std::string& name) const;

  /// Content hash of the named graph (GraphContentHash over its CSR),
  /// materializing it if needed. Computed lazily on the first request —
  /// the O(m) pass would otherwise tax every zero-copy mmap load — and
  /// cached while the entry stays resident. A reload (after eviction)
  /// resets it: the source file may hold different bytes now, and a
  /// stale hash would defeat the shard admission check this value
  /// exists for. NotFound for unknown names.
  StatusOr<uint64_t> ContentHash(const std::string& name);

  /// Drops the resident copy of a reloadable entry (the registration
  /// stays; the next Get reloads). FailedPrecondition for pinned
  /// entries, NotFound for unknown names.
  Status Evict(const std::string& name);

  /// Removes the entry entirely.
  Status Unregister(const std::string& name);

  bool Contains(const std::string& name) const;

  /// Writes a snapshot of the named graph (materializing it if needed),
  /// so subsequent sessions can register the snapshot instead of the
  /// original edge list.
  Status SaveSnapshotFor(const std::string& name, const std::string& path,
                         const SnapshotWriteOptions& options = {});

  /// Entries in registration order.
  std::vector<CatalogEntryInfo> Entries() const;

  /// Summed owned heap bytes of resident graphs (budget-relevant).
  std::size_t ResidentBytes() const;
  /// Summed mmap'ed bytes of resident graphs (budget-exempt).
  std::size_t MappedResidentBytes() const;
  std::size_t MemoryBudgetBytes() const { return memory_budget_bytes_; }

 private:
  enum class SourceKind { kFile, kDataset, kPinned };

  struct Entry {
    SourceKind kind;
    std::string locator;  // path or dataset key; empty for kPinned
    std::shared_ptr<const Graph> graph;  // null while evicted
    std::shared_ptr<const GraphPrecompute> precompute;  // may stay null
    std::size_t num_vertices = 0;
    std::size_t num_edges = 0;
    std::size_t memory_bytes = 0;  // owned bytes while resident
    std::size_t mapped_bytes = 0;  // mapped bytes while resident
    std::string precompute_tag = "unknown";  // sticky after first load
    uint64_t content_hash = 0;  // 0 = not yet computed; sticky once set
    uint64_t loads = 0;
    double last_load_seconds = 0;
    uint64_t sequence = 0;  // registration order for Entries()
    // Loading latch: true while one thread materializes this entry
    // outside the lock. Other Gets wait on load_cv_; mutators (Evict,
    // Unregister) wait too, so the entry cannot vanish mid-load.
    bool loading = false;
  };

  Status RegisterLocked(const std::string& name, Entry entry);
  StatusOr<CatalogGraph> MaterializeWithLock(
      std::unique_lock<std::mutex>& lock, const std::string& name);
  /// Blocks (releasing the lock) while the named entry is mid-load;
  /// returns the post-wait iterator (entries_.end() if unregistered).
  std::map<std::string, Entry>::iterator WaitWhileLoading(
      std::unique_lock<std::mutex>& lock, const std::string& name);
  void DropResident(Entry& entry);
  void EvictOverBudget(const std::string& keep);

  mutable std::mutex mutex_;
  std::condition_variable load_cv_;  // signalled when a load finishes
  std::map<std::string, Entry> entries_;
  LruList<std::string> lru_;  // resident entries only
  std::size_t memory_budget_bytes_;
  std::size_t resident_bytes_ = 0;         // owned bytes
  std::size_t mapped_resident_bytes_ = 0;  // mapped bytes
  uint64_t next_sequence_ = 0;
};

}  // namespace kplex

#endif  // KPLEX_SERVICE_GRAPH_CATALOG_H_
