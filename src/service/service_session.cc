#include "service/service_session.h"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_common/table_printer.h"

namespace kplex {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

// Splits "key=value"; value empty when no '=' present.
std::pair<std::string, std::string> SplitKeyValue(const std::string& token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) return {token, ""};
  return {token.substr(0, eq), token.substr(eq + 1)};
}

StatusOr<uint64_t> ParseUint(const std::string& key, const std::string& value,
                             uint64_t max = UINT64_MAX) {
  // std::stoull accepts a sign and wraps negatives; digits only here.
  for (char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("malformed value for " + key + ": '" +
                                     value + "'");
    }
  }
  try {
    std::size_t used = 0;
    const unsigned long long parsed = std::stoull(value, &used);
    if (value.empty() || used != value.size() || parsed > max) {
      throw std::out_of_range(value);
    }
    return static_cast<uint64_t>(parsed);
  } catch (const std::exception&) {
    return Status::InvalidArgument("malformed value for " + key + ": '" +
                                   value + "' (expected 0.." +
                                   std::to_string(max) + ")");
  }
}

StatusOr<double> ParseDouble(const std::string& key,
                             const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    return Status::InvalidArgument("malformed value for " + key + ": '" +
                                   value + "'");
  }
}

std::string HumanBytes(std::size_t bytes) {
  char buf[32];
  if (bytes >= (std::size_t{1} << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (std::size_t{1} << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

}  // namespace

ServiceSession::ServiceSession(std::ostream& out,
                               ServiceSessionOptions options)
    : out_(out), options_(options),
      catalog_(options.memory_budget_bytes),
      engine_(catalog_, options.result_cache_capacity) {
  DispatcherOptions dispatch;
  dispatch.workers = options.workers == 0 ? 1 : options.workers;
  dispatcher_ = std::make_unique<ServiceDispatcher>(engine_, dispatch);
}

void ServiceSession::Fail(const Status& status) {
  ++errors_;
  out_ << "error: " << status.ToString() << "\n";
}

bool ServiceSession::ExecuteLine(const std::string& line) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0][0] == '#') return true;
  if (options_.echo) out_ << "> " << line << "\n";
  const std::string& cmd = tokens[0];
  if (cmd == "quit" || cmd == "exit") return false;
  if (cmd == "load") {
    CmdLoad(tokens);
  } else if (cmd == "dataset") {
    CmdDataset(tokens);
  } else if (cmd == "snapshot") {
    CmdSnapshot(tokens);
  } else if (cmd == "mine") {
    CmdMine(tokens);
  } else if (cmd == "submit") {
    CmdSubmit(tokens);
  } else if (cmd == "cancel") {
    CmdCancel(tokens);
  } else if (cmd == "jobs") {
    CmdJobs();
  } else if (cmd == "wait") {
    CmdWait(tokens);
  } else if (cmd == "stats") {
    CmdStats();
  } else if (cmd == "evict") {
    CmdEvict(tokens);
  } else if (cmd == "help") {
    CmdHelp();
  } else {
    Fail(Status::InvalidArgument("unknown command '" + cmd +
                                 "' (try 'help')"));
  }
  return true;
}

uint64_t ServiceSession::RunScript(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    if (!ExecuteLine(line)) break;
  }
  // Sweep failures of jobs nobody waited on: the batch exit code must
  // not depend on whether the script bothered to view results. Jobs
  // still running here are cancelled by the dispatcher destructor, not
  // counted as failures.
  CountTerminalFailures();
  return errors_;
}

void ServiceSession::CountTerminalFailures() {
  for (const JobInfo& info : dispatcher_->Jobs()) {
    if (info.state == JobState::kFailed &&
        counted_failed_jobs_.insert(info.id).second) {
      ++errors_;
    }
  }
}

void ServiceSession::CmdLoad(const std::vector<std::string>& args) {
  if (args.size() != 3) {
    Fail(Status::InvalidArgument("usage: load NAME PATH"));
    return;
  }
  Status registered = catalog_.RegisterFile(args[1], args[2]);
  if (!registered.ok()) {
    Fail(registered);
    return;
  }
  auto graph = catalog_.Get(args[1]);  // materialize eagerly
  if (!graph.ok()) {
    catalog_.Unregister(args[1]);
    Fail(graph.status());
    return;
  }
  double load_seconds = 0;
  for (const auto& info : catalog_.Entries()) {
    if (info.name == args[1]) load_seconds = info.last_load_seconds;
  }
  out_ << "loaded " << args[1] << ": " << (*graph)->NumVertices()
       << " vertices, " << (*graph)->NumEdges() << " edges ("
       << FormatSeconds(load_seconds) << "s)\n";
}

void ServiceSession::CmdDataset(const std::vector<std::string>& args) {
  if (args.size() != 3) {
    Fail(Status::InvalidArgument("usage: dataset NAME KEY"));
    return;
  }
  Status registered = catalog_.RegisterDataset(args[1], args[2]);
  if (!registered.ok()) {
    Fail(registered);
    return;
  }
  auto graph = catalog_.Get(args[1]);
  if (!graph.ok()) {
    catalog_.Unregister(args[1]);
    Fail(graph.status());
    return;
  }
  out_ << "loaded " << args[1] << ": " << (*graph)->NumVertices()
       << " vertices, " << (*graph)->NumEdges() << " edges (dataset "
       << args[2] << ")\n";
}

void ServiceSession::CmdSnapshot(const std::vector<std::string>& args) {
  if (args.size() < 3) {
    Fail(Status::InvalidArgument(
        "usage: snapshot NAME PATH [precompute] [levels=C1,C2,...]"));
    return;
  }
  SnapshotWriteOptions options;
  for (std::size_t i = 3; i < args.size(); ++i) {
    const auto [key, value] = SplitKeyValue(args[i]);
    if (key == "precompute" && value.empty()) {
      options.include_precompute = true;
    } else if (key == "levels") {
      auto parsed = ParseCoreLevelList(value);
      if (!parsed.ok()) { Fail(parsed.status()); return; }
      options.include_precompute = true;
      options.core_mask_levels = *std::move(parsed);
    } else {
      Fail(Status::InvalidArgument("unknown snapshot option '" + args[i] +
                                   "'"));
      return;
    }
  }
  Status saved = catalog_.SaveSnapshotFor(args[1], args[2], options);
  if (!saved.ok()) {
    Fail(saved);
    return;
  }
  out_ << "snapshot " << args[1] << " -> " << args[2]
       << (options.include_precompute ? " (with precompute sections)" : "")
       << "\n";
}

namespace {

/// Parses "CMD NAME K Q [key=value ...]" (shared by mine and submit).
StatusOr<QueryRequest> ParseQueryArgs(const std::vector<std::string>& args) {
  if (args.size() < 4) {
    return Status::InvalidArgument(
        "usage: " + args[0] +
        " NAME K Q [algo=...] [threads=N] [max-results=N] "
        "[time-limit=S] [tau-ms=T] [cache=on|off]");
  }
  QueryRequest request;
  request.graph = args[1];
  auto k = ParseUint("K", args[2], UINT32_MAX);
  if (!k.ok()) return k.status();
  auto q = ParseUint("Q", args[3], UINT32_MAX);
  if (!q.ok()) return q.status();
  request.k = static_cast<uint32_t>(*k);
  request.q = static_cast<uint32_t>(*q);

  for (std::size_t i = 4; i < args.size(); ++i) {
    const auto [key, value] = SplitKeyValue(args[i]);
    if (key == "algo") {
      auto algo = ParseQueryAlgo(value);
      if (!algo.ok()) return algo.status();
      request.algo = *algo;
    } else if (key == "threads") {
      auto parsed = ParseUint(key, value, UINT32_MAX);
      if (!parsed.ok()) return parsed.status();
      request.threads = static_cast<uint32_t>(*parsed);
    } else if (key == "max-results") {
      auto parsed = ParseUint(key, value);
      if (!parsed.ok()) return parsed.status();
      request.max_results = *parsed;
    } else if (key == "time-limit") {
      auto parsed = ParseDouble(key, value);
      if (!parsed.ok()) return parsed.status();
      request.time_limit_seconds = *parsed;
    } else if (key == "tau-ms") {
      auto parsed = ParseDouble(key, value);
      if (!parsed.ok()) return parsed.status();
      request.tau_ms = *parsed;
    } else if (key == "cache") {
      if (value != "on" && value != "off") {
        return Status::InvalidArgument("cache must be on or off");
      }
      request.use_cache = value == "on";
    } else {
      return Status::InvalidArgument("unknown " + args[0] + " option '" +
                                     key + "'");
    }
  }
  return request;
}

/// One-line summary of a request ("web k=2 q=12 algo=ours").
std::string DescribeRequest(const QueryRequest& request) {
  return request.graph + " k=" + std::to_string(request.k) +
         " q=" + std::to_string(request.q) + " algo=" +
         QueryAlgoName(request.algo);
}

void PrintMineLine(std::ostream& out, const QueryRequest& request,
                   const QueryResult& result) {
  out << "mined " << DescribeRequest(request) << ": " << result.num_plexes
      << " plexes, max size " << result.max_plex_size << ", "
      << FormatSeconds(result.seconds) << "s";
  if (result.from_cache) out << " [cached]";
  if (result.reduction_precomputed && !result.from_cache) {
    out << " [precomputed reduction]";
  }
  if (result.timed_out) out << " [time limit hit]";
  if (result.stopped_early) out << " [result cap hit]";
  if (result.cancelled) out << " [cancelled]";
  out << "\n";
}

}  // namespace

void ServiceSession::PrintJobOutcome(const JobInfo& info,
                                     const std::string& prefix) {
  switch (info.state) {
    case JobState::kDone:
      out_ << prefix;
      PrintMineLine(out_, info.request, info.result);
      break;
    case JobState::kCancelled:
      if (!info.started) {
        out_ << prefix << "cancelled " << DescribeRequest(info.request)
             << " before it started\n";
      } else {
        out_ << prefix;
        PrintMineLine(out_, info.request, info.result);
      }
      break;
    case JobState::kFailed:
      if (counted_failed_jobs_.insert(info.id).second) ++errors_;
      out_ << prefix << "error: " << info.status.ToString() << "\n";
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      out_ << prefix << JobStateName(info.state) << "\n";  // unreachable
      break;
  }
}

void ServiceSession::CmdMine(const std::vector<std::string>& args) {
  auto request = ParseQueryArgs(args);
  if (!request.ok()) {
    Fail(request.status());
    return;
  }
  // Synchronous mine is submit-and-wait on the shared dispatcher: one
  // execution path for every query, and byte-identical output to the
  // historical serial session.
  auto id = dispatcher_->Submit(*request);
  if (!id.ok()) {
    Fail(id.status());
    return;
  }
  auto info = dispatcher_->Wait(*id);
  if (!info.ok()) {
    Fail(info.status());
    return;
  }
  // PrintJobOutcome handles the kFailed case too (one counted error
  // per failed job, however it surfaces).
  PrintJobOutcome(*info, "");
}

void ServiceSession::CmdSubmit(const std::vector<std::string>& args) {
  auto request = ParseQueryArgs(args);
  if (!request.ok()) {
    Fail(request.status());
    return;
  }
  auto id = dispatcher_->Submit(*request);
  if (!id.ok()) {
    Fail(id.status());
    return;
  }
  out_ << "job " << *id << " submitted: mine " << DescribeRequest(*request)
       << "\n";
}

void ServiceSession::CmdCancel(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    Fail(Status::InvalidArgument("usage: cancel ID"));
    return;
  }
  auto id = ParseUint("ID", args[1]);
  if (!id.ok()) {
    Fail(id.status());
    return;
  }
  Status cancelled = dispatcher_->Cancel(*id);
  if (!cancelled.ok()) {
    Fail(cancelled);
    return;
  }
  out_ << "cancel requested for job " << *id << "\n";
}

void ServiceSession::CmdJobs() {
  TablePrinter table({"id", "query", "state", "plexes", "seconds"});
  for (const JobInfo& info : dispatcher_->Jobs()) {
    const bool has_result = info.state == JobState::kDone ||
                            (info.state == JobState::kCancelled &&
                             info.started);
    table.AddRow({std::to_string(info.id), DescribeRequest(info.request),
                  JobStateName(info.state),
                  has_result ? FormatCount(info.result.num_plexes) : "-",
                  has_result ? FormatSeconds(info.result.seconds) : "-"});
  }
  table.Print(out_);
}

void ServiceSession::CmdWait(const std::vector<std::string>& args) {
  if (args.size() > 2) {
    Fail(Status::InvalidArgument("usage: wait [ID]"));
    return;
  }
  if (args.size() == 2) {
    auto id = ParseUint("ID", args[1]);
    if (!id.ok()) {
      Fail(id.status());
      return;
    }
    auto info = dispatcher_->Wait(*id);
    if (!info.ok()) {
      Fail(info.status());
      return;
    }
    PrintJobOutcome(*info, "job " + std::to_string(info->id) + ": ");
    return;
  }
  dispatcher_->Drain();
  CountTerminalFailures();
  const ServiceDispatcher::JobCounts counts = dispatcher_->Counts();
  out_ << "all jobs finished: " << counts.done << " done, "
       << counts.cancelled << " cancelled, " << counts.failed
       << " failed\n";
}

void ServiceSession::CmdStats() {
  TablePrinter graphs({"name", "source", "resident", "vertices", "edges",
                       "owned", "mapped", "precompute", "loads"});
  for (const auto& info : catalog_.Entries()) {
    graphs.AddRow({info.name, info.source, info.resident ? "yes" : "no",
                   FormatCount(info.num_vertices),
                   FormatCount(info.num_edges), HumanBytes(info.memory_bytes),
                   HumanBytes(info.mapped_bytes), info.precompute,
                   FormatCount(info.loads)});
  }
  graphs.Print(out_);
  out_ << "resident: " << HumanBytes(catalog_.ResidentBytes()) << " owned";
  if (catalog_.MemoryBudgetBytes() > 0) {
    out_ << " / budget " << HumanBytes(catalog_.MemoryBudgetBytes());
  }
  out_ << " + " << HumanBytes(catalog_.MappedResidentBytes())
       << " mapped (zero-copy, budget-exempt)\n";
  const QueryEngine::CacheStats cache = engine_.cache_stats();
  out_ << "result cache: " << cache.entries << "/" << cache.capacity
       << " entries, " << cache.hits << " hits, " << cache.misses
       << " misses\n";
  const ServiceDispatcher::JobCounts jobs = dispatcher_->Counts();
  out_ << "dispatcher: " << dispatcher_->num_workers() << " worker(s), "
       << jobs.queued << " queued, " << jobs.running << " running, "
       << (jobs.done + jobs.cancelled + jobs.failed) << " finished\n";
}

void ServiceSession::CmdEvict(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    Fail(Status::InvalidArgument("usage: evict NAME"));
    return;
  }
  Status evicted = catalog_.Evict(args[1]);
  if (!evicted.ok()) {
    Fail(evicted);
    return;
  }
  out_ << "evicted " << args[1] << "\n";
}

void ServiceSession::CmdHelp() {
  out_ << "commands:\n"
          "  load NAME PATH        register + load a graph file\n"
          "  dataset NAME KEY      register + load a registry dataset\n"
          "  snapshot NAME PATH [precompute] [levels=C1,C2,...]\n"
          "                        write NAME as a binary v2 snapshot;\n"
          "                        precompute stores reduction sections\n"
          "  mine NAME K Q [algo=ours|ours_p|basic|listplex|fp]\n"
          "       [threads=N] [max-results=N] [time-limit=S] [tau-ms=T]\n"
          "       [cache=on|off]\n"
          "  submit NAME K Q [...] run a mine asynchronously; prints a\n"
          "                        job id immediately\n"
          "  cancel ID             cancel a queued or running job\n"
          "  jobs                  status of every submitted job\n"
          "  wait [ID]             block until job ID (or all jobs) done\n"
          "  stats                 catalog + cache + dispatcher stats\n"
          "  evict NAME            drop the resident copy\n"
          "  quit                  end the session\n";
}

}  // namespace kplex
