#include "service/service_session.h"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_common/table_printer.h"

namespace kplex {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

// Splits "key=value"; value empty when no '=' present.
std::pair<std::string, std::string> SplitKeyValue(const std::string& token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) return {token, ""};
  return {token.substr(0, eq), token.substr(eq + 1)};
}

StatusOr<uint64_t> ParseUint(const std::string& key, const std::string& value,
                             uint64_t max = UINT64_MAX) {
  // std::stoull accepts a sign and wraps negatives; digits only here.
  for (char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("malformed value for " + key + ": '" +
                                     value + "'");
    }
  }
  try {
    std::size_t used = 0;
    const unsigned long long parsed = std::stoull(value, &used);
    if (value.empty() || used != value.size() || parsed > max) {
      throw std::out_of_range(value);
    }
    return static_cast<uint64_t>(parsed);
  } catch (const std::exception&) {
    return Status::InvalidArgument("malformed value for " + key + ": '" +
                                   value + "' (expected 0.." +
                                   std::to_string(max) + ")");
  }
}

StatusOr<double> ParseDouble(const std::string& key,
                             const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    return Status::InvalidArgument("malformed value for " + key + ": '" +
                                   value + "'");
  }
}

std::string HumanBytes(std::size_t bytes) {
  char buf[32];
  if (bytes >= (std::size_t{1} << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (std::size_t{1} << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

}  // namespace

ServiceSession::ServiceSession(std::ostream& out,
                               ServiceSessionOptions options)
    : out_(out), options_(options),
      catalog_(options.memory_budget_bytes),
      engine_(catalog_, options.result_cache_capacity) {}

void ServiceSession::Fail(const Status& status) {
  ++errors_;
  out_ << "error: " << status.ToString() << "\n";
}

bool ServiceSession::ExecuteLine(const std::string& line) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0][0] == '#') return true;
  if (options_.echo) out_ << "> " << line << "\n";
  const std::string& cmd = tokens[0];
  if (cmd == "quit" || cmd == "exit") return false;
  if (cmd == "load") {
    CmdLoad(tokens);
  } else if (cmd == "dataset") {
    CmdDataset(tokens);
  } else if (cmd == "snapshot") {
    CmdSnapshot(tokens);
  } else if (cmd == "mine") {
    CmdMine(tokens);
  } else if (cmd == "stats") {
    CmdStats();
  } else if (cmd == "evict") {
    CmdEvict(tokens);
  } else if (cmd == "help") {
    CmdHelp();
  } else {
    Fail(Status::InvalidArgument("unknown command '" + cmd +
                                 "' (try 'help')"));
  }
  return true;
}

uint64_t ServiceSession::RunScript(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    if (!ExecuteLine(line)) break;
  }
  return errors_;
}

void ServiceSession::CmdLoad(const std::vector<std::string>& args) {
  if (args.size() != 3) {
    Fail(Status::InvalidArgument("usage: load NAME PATH"));
    return;
  }
  Status registered = catalog_.RegisterFile(args[1], args[2]);
  if (!registered.ok()) {
    Fail(registered);
    return;
  }
  auto graph = catalog_.Get(args[1]);  // materialize eagerly
  if (!graph.ok()) {
    catalog_.Unregister(args[1]);
    Fail(graph.status());
    return;
  }
  double load_seconds = 0;
  for (const auto& info : catalog_.Entries()) {
    if (info.name == args[1]) load_seconds = info.last_load_seconds;
  }
  out_ << "loaded " << args[1] << ": " << (*graph)->NumVertices()
       << " vertices, " << (*graph)->NumEdges() << " edges ("
       << FormatSeconds(load_seconds) << "s)\n";
}

void ServiceSession::CmdDataset(const std::vector<std::string>& args) {
  if (args.size() != 3) {
    Fail(Status::InvalidArgument("usage: dataset NAME KEY"));
    return;
  }
  Status registered = catalog_.RegisterDataset(args[1], args[2]);
  if (!registered.ok()) {
    Fail(registered);
    return;
  }
  auto graph = catalog_.Get(args[1]);
  if (!graph.ok()) {
    catalog_.Unregister(args[1]);
    Fail(graph.status());
    return;
  }
  out_ << "loaded " << args[1] << ": " << (*graph)->NumVertices()
       << " vertices, " << (*graph)->NumEdges() << " edges (dataset "
       << args[2] << ")\n";
}

void ServiceSession::CmdSnapshot(const std::vector<std::string>& args) {
  if (args.size() < 3) {
    Fail(Status::InvalidArgument(
        "usage: snapshot NAME PATH [precompute] [levels=C1,C2,...]"));
    return;
  }
  SnapshotWriteOptions options;
  for (std::size_t i = 3; i < args.size(); ++i) {
    const auto [key, value] = SplitKeyValue(args[i]);
    if (key == "precompute" && value.empty()) {
      options.include_precompute = true;
    } else if (key == "levels") {
      auto parsed = ParseCoreLevelList(value);
      if (!parsed.ok()) { Fail(parsed.status()); return; }
      options.include_precompute = true;
      options.core_mask_levels = *std::move(parsed);
    } else {
      Fail(Status::InvalidArgument("unknown snapshot option '" + args[i] +
                                   "'"));
      return;
    }
  }
  Status saved = catalog_.SaveSnapshotFor(args[1], args[2], options);
  if (!saved.ok()) {
    Fail(saved);
    return;
  }
  out_ << "snapshot " << args[1] << " -> " << args[2]
       << (options.include_precompute ? " (with precompute sections)" : "")
       << "\n";
}

void ServiceSession::CmdMine(const std::vector<std::string>& args) {
  if (args.size() < 4) {
    Fail(Status::InvalidArgument(
        "usage: mine NAME K Q [algo=...] [threads=N] [max-results=N] "
        "[time-limit=S] [tau-ms=T] [cache=on|off]"));
    return;
  }
  QueryRequest request;
  request.graph = args[1];
  auto k = ParseUint("K", args[2], UINT32_MAX);
  auto q = ParseUint("Q", args[3], UINT32_MAX);
  if (!k.ok()) { Fail(k.status()); return; }
  if (!q.ok()) { Fail(q.status()); return; }
  request.k = static_cast<uint32_t>(*k);
  request.q = static_cast<uint32_t>(*q);

  for (std::size_t i = 4; i < args.size(); ++i) {
    const auto [key, value] = SplitKeyValue(args[i]);
    if (key == "algo") {
      auto algo = ParseQueryAlgo(value);
      if (!algo.ok()) { Fail(algo.status()); return; }
      request.algo = *algo;
    } else if (key == "threads") {
      auto parsed = ParseUint(key, value, UINT32_MAX);
      if (!parsed.ok()) { Fail(parsed.status()); return; }
      request.threads = static_cast<uint32_t>(*parsed);
    } else if (key == "max-results") {
      auto parsed = ParseUint(key, value);
      if (!parsed.ok()) { Fail(parsed.status()); return; }
      request.max_results = *parsed;
    } else if (key == "time-limit") {
      auto parsed = ParseDouble(key, value);
      if (!parsed.ok()) { Fail(parsed.status()); return; }
      request.time_limit_seconds = *parsed;
    } else if (key == "tau-ms") {
      auto parsed = ParseDouble(key, value);
      if (!parsed.ok()) { Fail(parsed.status()); return; }
      request.tau_ms = *parsed;
    } else if (key == "cache") {
      if (value != "on" && value != "off") {
        Fail(Status::InvalidArgument("cache must be on or off"));
        return;
      }
      request.use_cache = value == "on";
    } else {
      Fail(Status::InvalidArgument("unknown mine option '" + key + "'"));
      return;
    }
  }

  auto result = engine_.Run(request);
  if (!result.ok()) {
    Fail(result.status());
    return;
  }
  out_ << "mined " << request.graph << " k=" << request.k
       << " q=" << request.q << " algo=" << QueryAlgoName(request.algo)
       << ": " << result->num_plexes << " plexes, max size "
       << result->max_plex_size << ", " << FormatSeconds(result->seconds)
       << "s";
  if (result->from_cache) out_ << " [cached]";
  if (result->reduction_precomputed && !result->from_cache) {
    out_ << " [precomputed reduction]";
  }
  if (result->timed_out) out_ << " [time limit hit]";
  if (result->stopped_early) out_ << " [result cap hit]";
  if (result->cancelled) out_ << " [cancelled]";
  out_ << "\n";
}

void ServiceSession::CmdStats() {
  TablePrinter graphs({"name", "source", "resident", "vertices", "edges",
                       "owned", "mapped", "precompute", "loads"});
  for (const auto& info : catalog_.Entries()) {
    graphs.AddRow({info.name, info.source, info.resident ? "yes" : "no",
                   FormatCount(info.num_vertices),
                   FormatCount(info.num_edges), HumanBytes(info.memory_bytes),
                   HumanBytes(info.mapped_bytes), info.precompute,
                   FormatCount(info.loads)});
  }
  graphs.Print(out_);
  out_ << "resident: " << HumanBytes(catalog_.ResidentBytes()) << " owned";
  if (catalog_.MemoryBudgetBytes() > 0) {
    out_ << " / budget " << HumanBytes(catalog_.MemoryBudgetBytes());
  }
  out_ << " + " << HumanBytes(catalog_.MappedResidentBytes())
       << " mapped (zero-copy, budget-exempt)\n";
  const QueryEngine::CacheStats cache = engine_.cache_stats();
  out_ << "result cache: " << cache.entries << "/" << cache.capacity
       << " entries, " << cache.hits << " hits, " << cache.misses
       << " misses\n";
}

void ServiceSession::CmdEvict(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    Fail(Status::InvalidArgument("usage: evict NAME"));
    return;
  }
  Status evicted = catalog_.Evict(args[1]);
  if (!evicted.ok()) {
    Fail(evicted);
    return;
  }
  out_ << "evicted " << args[1] << "\n";
}

void ServiceSession::CmdHelp() {
  out_ << "commands:\n"
          "  load NAME PATH        register + load a graph file\n"
          "  dataset NAME KEY      register + load a registry dataset\n"
          "  snapshot NAME PATH [precompute] [levels=C1,C2,...]\n"
          "                        write NAME as a binary v2 snapshot;\n"
          "                        precompute stores reduction sections\n"
          "  mine NAME K Q [algo=ours|ours_p|basic|listplex|fp]\n"
          "       [threads=N] [max-results=N] [time-limit=S] [tau-ms=T]\n"
          "       [cache=on|off]\n"
          "  stats                 catalog + result-cache statistics\n"
          "  evict NAME            drop the resident copy\n"
          "  quit                  end the session\n";
}

}  // namespace kplex
