#include "service/service_session.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "util/timer.h"

namespace kplex {
namespace {

Histogram& SerializeSeconds() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "kplex_session_serialize_seconds");
  return histogram;
}

// The session decomposes the logical mine/mineshard verbs into
// submit + wait before they reach ServiceApi::Execute (the job id must
// be visible to the disconnect watcher between the two). Execute's
// per-verb accounting therefore only sees the transport verbs; the
// logical verbs are counted here, at the decomposition point.
Counter& MineRequestsTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_requests_mine_total");
  return counter;
}
Histogram& MineSeconds() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "kplex_request_mine_seconds");
  return histogram;
}
Counter& MineShardRequestsTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_requests_mineshard_total");
  return counter;
}
Histogram& MineShardSeconds() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "kplex_request_mineshard_seconds");
  return histogram;
}
Counter& StreamChunksTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_stream_chunks_total");
  return counter;
}
Counter& StreamPlexesTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_stream_plexes_total");
  return counter;
}
Counter& StreamBytesTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_stream_bytes_total");
  return counter;
}
Histogram& StreamWriteSeconds() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "kplex_session_stream_write_seconds");
  return histogram;
}

}  // namespace

ServiceSession::ServiceSession(std::ostream& out,
                               ServiceSessionOptions options)
    : out_(out), echo_(options.echo) {
  ServiceApiOptions api_options;
  api_options.memory_budget_bytes = options.memory_budget_bytes;
  api_options.result_cache_capacity = options.result_cache_capacity;
  api_options.workers = options.workers;
  api_ = std::make_shared<ServiceApi>(api_options);
}

ServiceSession::ServiceSession(std::ostream& out,
                               std::shared_ptr<ServiceApi> api, bool echo)
    : out_(out), echo_(echo), api_(std::move(api)) {}

void ServiceSession::Fail(const Status& status, uint64_t request_id) {
  ++errors_;
  if (mode_ == WireMode::kText) {
    out_ << "error: " << status.ToString() << "\n";
  } else {
    Response response;
    response.request_id = request_id;
    response.payload = ErrorResponse{status};
    out_ << FormatFramedResponse(response) << "\n";
  }
}

bool ServiceSession::ExecuteLine(const std::string& line) {
  if (mode_ == WireMode::kText) {
    if (IsBlankOrComment(line)) return true;
    if (echo_) out_ << "> " << line << "\n";
    auto request = ParseTextRequest(line);
    if (!request.ok()) {
      Fail(request.status());
      return true;
    }
    return Dispatch(*request);
  }
  // Framed mode tolerates truly blank keep-alive lines only; '#' is
  // not a comment marker here — every non-blank frame gets a
  // correlated response, or request/response clients would hang.
  if (line.find_first_not_of(" \t\r") == std::string::npos) return true;
  uint64_t error_id = 0;
  auto request = ParseFramedRequest(line, &error_id);
  if (!request.ok()) {
    // A rejected frame still answers under the client's id when one
    // was readable, so pipelining clients never orphan the failure.
    Fail(request.status(), error_id);
    return true;
  }
  return Dispatch(*request);
}

bool ServiceSession::Dispatch(const Request& request) {
  // The historical text grammar ends the session on `quit` without
  // printing anything; the framed wire acknowledges with a bye frame so
  // clients can distinguish a clean close from a dropped connection.
  if (std::holds_alternative<QuitRequest>(request.payload) &&
      mode_ == WireMode::kText) {
    return false;
  }
  Response response;
  if (const auto* mine = std::get_if<MineRequest>(&request.payload)) {
    response = ExecuteMine(request.id, *mine);
  } else if (const auto* shard =
                 std::get_if<MineShardRequest>(&request.payload)) {
    response = ExecuteMineShard(request.id, *shard);
  } else {
    response = api_->Execute(request);
  }
  NoteResponse(response);
  // A hello that switches the wire mode is answered in the *new* mode,
  // so a framed client's very first read is already a JSON frame.
  if (const auto* hello = std::get_if<HelloResponse>(&response.payload)) {
    if (hello->mode.has_value()) mode_ = *hello->mode;
  }
  // Streamed delivery: a results=stream mine's plex bodies travel as
  // bounded result_chunk frames ahead of the final verdict frame.
  // Backpressure is the transport's: each chunk is a blocking write, so
  // a slow client throttles this (the session's own) thread, never a
  // dispatcher worker.
  if (const auto* mine = std::get_if<MineRequest>(&request.payload)) {
    if (mine->query.collect_bodies) {
      if (const auto* outcome = std::get_if<MineResponse>(&response.payload);
          outcome != nullptr && outcome->job.result.plexes != nullptr) {
        EmitResultChunks(request.id, mine->query, outcome->job);
      }
    }
  }
  WallTimer serialize_timer;
  if (mode_ == WireMode::kText) {
    FormatTextResponse(response, out_);
  } else {
    out_ << FormatFramedResponse(response) << "\n";
  }
  SerializeSeconds().Observe(serialize_timer.ElapsedSeconds());
  return !std::holds_alternative<ByeResponse>(response.payload);
}

void ServiceSession::EmitResultChunks(uint64_t request_id,
                                      const QueryRequest& query,
                                      const JobInfo& job) {
  const std::vector<std::vector<VertexId>>& plexes = *job.result.plexes;
  const uint32_t chunk_size =
      query.chunk_size > 0 ? query.chunk_size : kDefaultResultChunkSize;
  uint64_t seq = 0;
  std::size_t offset = 0;
  WallTimer timer;
  // An empty result still sends one empty last chunk, so a streaming
  // client always sees the chunk phase terminate explicitly.
  do {
    const std::size_t take =
        std::min<std::size_t>(chunk_size, plexes.size() - offset);
    ResultChunkResponse chunk;
    chunk.job = job.id;
    chunk.seq = seq++;
    chunk.plexes.assign(plexes.begin() + static_cast<std::ptrdiff_t>(offset),
                        plexes.begin() +
                            static_cast<std::ptrdiff_t>(offset + take));
    offset += take;
    chunk.last = offset == plexes.size();
    const uint64_t plex_count = chunk.plexes.size();
    Response response;
    response.request_id = request_id;
    response.payload = std::move(chunk);
    std::size_t bytes = 0;
    if (mode_ == WireMode::kText) {
      std::ostringstream rendered;
      FormatTextResponse(response, rendered);
      bytes = rendered.str().size();
      out_ << rendered.str();
    } else {
      const std::string line = FormatFramedResponse(response);
      bytes = line.size() + 1;
      out_ << line << "\n";
    }
    StreamChunksTotal().Increment();
    StreamPlexesTotal().Increment(plex_count);
    StreamBytesTotal().Increment(bytes);
  } while (offset < plexes.size());
  StreamWriteSeconds().Observe(timer.ElapsedSeconds());
}

Response ServiceSession::ExecuteMine(uint64_t request_id,
                                     const MineRequest& mine) {
  MineRequestsTotal().Increment();
  WallTimer timer;
  Request submit;
  submit.id = request_id;
  submit.payload = SubmitRequest{mine.query};
  Response submitted = api_->Execute(submit);
  const auto* accepted = std::get_if<SubmitResponse>(&submitted.payload);
  if (accepted == nullptr) return submitted;  // ErrorResponse (queue full)
  RecordSubmittedJob(accepted->job);
  Request wait;
  wait.id = request_id;
  wait.payload = WaitRequest{accepted->job};
  Response waited = api_->Execute(wait);
  if (auto* outcome = std::get_if<WaitResponse>(&waited.payload)) {
    // Same terminal JobInfo, mine-shaped (no "job N: " prefix).
    waited.payload = MineResponse{std::move(outcome->job)};
  }
  MineSeconds().Observe(timer.ElapsedSeconds());
  return waited;
}

Response ServiceSession::ExecuteMineShard(uint64_t request_id,
                                          const MineShardRequest& shard) {
  MineShardRequestsTotal().Increment();
  WallTimer timer;
  Response response;
  response.request_id = request_id;
  auto submitted = api_->SubmitShard(shard);
  if (!submitted.ok()) {
    response.payload = ErrorResponse{SanitizeErrorStatus(submitted.status())};
    return response;
  }
  // The job id is visible to the disconnect watcher before this thread
  // blocks, exactly like a synchronous mine.
  RecordSubmittedJob(submitted->job);
  Request wait;
  wait.id = request_id;
  wait.payload = WaitRequest{submitted->job};
  Response waited = api_->Execute(wait);
  if (auto* outcome = std::get_if<WaitResponse>(&waited.payload)) {
    waited.payload =
        ShardResultResponse{std::move(outcome->job), submitted->content_hash};
  }
  MineShardSeconds().Observe(timer.ElapsedSeconds());
  return waited;
}

void ServiceSession::RecordSubmittedJob(uint64_t id) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  submitted_jobs_.push_back(id);
}

void ServiceSession::NoteResponse(const Response& response) {
  if (std::holds_alternative<ErrorResponse>(response.payload)) {
    ++errors_;
    return;
  }
  if (const auto* submit = std::get_if<SubmitResponse>(&response.payload)) {
    RecordSubmittedJob(submit->job);
    return;
  }
  // A shardsubmit job belongs to this session the same way: a dropped
  // coordinator lane must not leave its shard running unattended.
  if (const auto* shard_submit =
          std::get_if<ShardSubmitResponse>(&response.payload)) {
    RecordSubmittedJob(shard_submit->job);
    return;
  }
  const JobInfo* job = nullptr;
  if (const auto* mine = std::get_if<MineResponse>(&response.payload)) {
    job = &mine->job;
  } else if (const auto* shard =
                 std::get_if<ShardResultResponse>(&response.payload)) {
    job = &shard->job;
  } else if (const auto* wait = std::get_if<WaitResponse>(&response.payload)) {
    job = &wait->job;
  }
  if (job != nullptr && job->state == JobState::kFailed &&
      counted_failed_jobs_.insert(job->id).second) {
    ++errors_;
    return;
  }
  if (const auto* all = std::get_if<WaitAllResponse>(&response.payload)) {
    for (uint64_t id : all->failed_jobs) {
      if (counted_failed_jobs_.insert(id).second) ++errors_;
    }
  }
}

uint64_t ServiceSession::RunScript(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    if (!ExecuteLine(line)) break;
  }
  // Sweep failures of jobs nobody waited on: the batch exit code must
  // not depend on whether the script bothered to view results. Jobs
  // still running here are cancelled by the dispatcher destructor, not
  // counted as failures.
  CountTerminalFailures();
  return errors_;
}

void ServiceSession::CountTerminalFailures() {
  for (const JobInfo& info : api_->dispatcher().Jobs()) {
    if (info.state == JobState::kFailed &&
        counted_failed_jobs_.insert(info.id).second) {
      ++errors_;
    }
  }
}

void ServiceSession::CancelOutstandingJobs() {
  std::vector<uint64_t> jobs;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs = submitted_jobs_;
  }
  ServiceDispatcher& dispatcher = api_->dispatcher();
  for (uint64_t id : jobs) {
    auto info = dispatcher.GetJob(id);
    if (info.ok() && (info->state == JobState::kQueued ||
                      info->state == JobState::kRunning)) {
      (void)dispatcher.Cancel(id);  // lost races with completion are fine
    }
  }
}

}  // namespace kplex
