// ServiceSession: the scriptable command interpreter behind
// `kplex_cli serve`. One session owns a GraphCatalog and a QueryEngine
// and executes newline-separated commands from a script file, stdin, or
// a test harness:
//
//   load NAME PATH        register + materialize a graph file (binary
//                         snapshots auto-detected, else SNAP edge list)
//   dataset NAME KEY      register + materialize a registry dataset
//   snapshot NAME PATH [precompute] [levels=C1,C2,...]
//                         write NAME as a binary v2 snapshot, optionally
//                         with precomputed reduction sections
//   mine NAME K Q [key=value ...]
//                         keys: algo (ours|ours_p|basic|listplex|fp),
//                         threads, max-results, time-limit, tau-ms,
//                         cache (on|off)
//   stats                 catalog + result-cache tables
//   evict NAME            drop the resident copy (reloads on next use)
//   help                  command summary
//   quit                  end the session
//
// Blank lines and '#' comments are skipped. A failing command prints
// "error: ..." and the session continues; failures are counted so batch
// callers can exit non-zero.

#ifndef KPLEX_SERVICE_SERVICE_SESSION_H_
#define KPLEX_SERVICE_SERVICE_SESSION_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "service/graph_catalog.h"
#include "service/query_engine.h"

namespace kplex {

struct ServiceSessionOptions {
  /// Catalog memory budget in bytes (0 = unlimited).
  std::size_t memory_budget_bytes = 0;
  /// Result-cache capacity in entries (0 disables caching).
  std::size_t result_cache_capacity = 64;
  /// Echo each command before executing it (script mode readability).
  bool echo = false;
};

class ServiceSession {
 public:
  explicit ServiceSession(std::ostream& out,
                          ServiceSessionOptions options = {});

  /// Executes one command line. Returns false once `quit` is reached.
  bool ExecuteLine(const std::string& line);

  /// Executes lines from `in` until EOF or `quit`; returns the number of
  /// failed commands.
  uint64_t RunScript(std::istream& in);

  uint64_t errors() const { return errors_; }

  GraphCatalog& catalog() { return catalog_; }
  QueryEngine& engine() { return engine_; }

 private:
  void Fail(const Status& status);
  void CmdLoad(const std::vector<std::string>& args);
  void CmdDataset(const std::vector<std::string>& args);
  void CmdSnapshot(const std::vector<std::string>& args);
  void CmdMine(const std::vector<std::string>& args);
  void CmdStats();
  void CmdEvict(const std::vector<std::string>& args);
  void CmdHelp();

  std::ostream& out_;
  ServiceSessionOptions options_;
  GraphCatalog catalog_;
  QueryEngine engine_;
  uint64_t errors_ = 0;
};

}  // namespace kplex

#endif  // KPLEX_SERVICE_SERVICE_SESSION_H_
