// ServiceSession: the wire adapter behind `kplex_cli serve` and each
// TCP connection. A session binds one output stream to a ServiceApi
// (owned, or shared with other sessions of the same serve process) and
// runs the protocol loop: parse a line into a typed Request
// (service/protocol.h), execute it through the api, format the typed
// Response back onto the stream. All command syntax, validation, and
// rendering live in the protocol codecs — this class only keeps the
// per-connection state the protocol is stateful about:
//
//   - the wire mode (text until a `hello mode=framed` handshake),
//   - the error tally for batch exit codes (a failed job counts exactly
//     once no matter how often or through which command it surfaces),
//   - the ids of jobs this session submitted, so a dropped TCP client's
//     outstanding work can be cancelled (CancelOutstandingJobs).
//
// The text grammar and its output are byte-identical to the historical
// ServiceSession (see docs/SERVE.md for the command reference). Blank
// lines and '#' comments are skipped; a failing command prints
// "error: ..." and the session continues.
//
// Concurrency: one session is single-threaded (its transport's thread),
// but many sessions may share one ServiceApi — all printing happens on
// the session's own thread, never a dispatcher worker's.

#ifndef KPLEX_SERVICE_SERVICE_SESSION_H_
#define KPLEX_SERVICE_SERVICE_SESSION_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "service/service_api.h"
#include "service/wire_session.h"

namespace kplex {

struct ServiceSessionOptions {
  /// Catalog memory budget in bytes (0 = unlimited).
  std::size_t memory_budget_bytes = 0;
  /// Result-cache capacity in entries (0 disables caching).
  std::size_t result_cache_capacity = 64;
  /// Echo each command before executing it (script mode readability).
  bool echo = false;
  /// Dispatcher worker threads. 1 (the default) preserves the serial
  /// session semantics; N > 1 lets `submit`ted jobs run concurrently
  /// over the shared catalog. 0 is clamped to 1.
  uint32_t workers = 1;
};

class ServiceSession : public WireSession {
 public:
  /// Standalone session: constructs and owns its own ServiceApi.
  explicit ServiceSession(std::ostream& out,
                          ServiceSessionOptions options = {});

  /// Adapter over a shared ServiceApi (one per TCP connection; the api
  /// outlives every session through the shared_ptr).
  ServiceSession(std::ostream& out, std::shared_ptr<ServiceApi> api,
                 bool echo = false);

  /// Executes one wire line (text or framed, per the negotiated mode).
  /// Returns false once `quit` is reached.
  bool ExecuteLine(const std::string& line) override;

  /// Executes lines from `in` until EOF or `quit`; returns the number of
  /// failed commands (job failures nobody waited on included).
  uint64_t RunScript(std::istream& in);

  /// Requests cancellation of every non-terminal job this session
  /// created — `submit`ted jobs and the job behind an in-flight
  /// synchronous `mine`. Unlike the rest of the class this method is
  /// safe to call from another thread (a transport's disconnect
  /// watcher fires it while the session thread is blocked in a mine).
  void CancelOutstandingJobs() override;

  uint64_t errors() const { return errors_; }
  WireMode mode() const override { return mode_; }

  ServiceApi& api() { return *api_; }
  GraphCatalog& catalog() { return api_->catalog(); }
  QueryEngine& engine() { return api_->engine(); }
  ServiceDispatcher& dispatcher() { return api_->dispatcher(); }

 private:
  /// Executes a parsed request and writes its response; returns false
  /// for quit.
  bool Dispatch(const Request& request);
  /// Writes the buffered plex bodies of a results=stream mine as
  /// bounded result_chunk frames (chunk size from the request, default
  /// kDefaultResultChunkSize), ahead of the final verdict frame. An
  /// empty result emits one empty last chunk.
  void EmitResultChunks(uint64_t request_id, const QueryRequest& query,
                        const JobInfo& job);
  /// Synchronous mine = tracked submit + wait: the job id lands in
  /// submitted_jobs_ *before* this thread blocks, so a disconnect
  /// watcher can cancel it mid-run (ServiceApi's one-shot mine handler
  /// offers no such window). Output is shaped exactly like
  /// ServiceApi's MineResponse.
  Response ExecuteMine(uint64_t request_id, const MineRequest& mine);
  /// Same tracked submit + wait shape for a shard (the admission check
  /// runs in ServiceApi::SubmitShard): a coordinator that disconnects
  /// mid-shard gets its running shard cancelled like any other job.
  Response ExecuteMineShard(uint64_t request_id,
                            const MineShardRequest& shard);
  void RecordSubmittedJob(uint64_t id);
  /// Prints "error: ..." in the current mode and counts it. In framed
  /// mode the response carries `request_id` (the client's correlation
  /// id when the failed frame had a readable one).
  void Fail(const Status& status, uint64_t request_id = 0);
  /// Error-tally bookkeeping: ErrorResponses, and terminal job failures
  /// (each job id counted once, wherever it surfaces).
  void NoteResponse(const Response& response);
  /// Folds failures of terminal jobs into errors_ (each job once).
  void CountTerminalFailures();

  std::ostream& out_;
  bool echo_ = false;
  WireMode mode_ = WireMode::kText;
  std::shared_ptr<ServiceApi> api_;
  /// Jobs created through this session (for disconnect cancellation).
  /// Guarded by jobs_mutex_: the one piece of session state a
  /// transport's watcher thread reads concurrently.
  std::mutex jobs_mutex_;
  std::vector<uint64_t> submitted_jobs_;
  /// Failed-job ids already counted toward errors_: a job failure is one
  /// error no matter how often (or through which command) it surfaces.
  std::set<uint64_t> counted_failed_jobs_;
  uint64_t errors_ = 0;
};

}  // namespace kplex

#endif  // KPLEX_SERVICE_SERVICE_SESSION_H_
