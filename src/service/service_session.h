// ServiceSession: the scriptable command interpreter behind
// `kplex_cli serve`. One session owns a GraphCatalog and a QueryEngine
// and executes newline-separated commands from a script file, stdin, or
// a test harness:
//
//   load NAME PATH        register + materialize a graph file (binary
//                         snapshots auto-detected, else SNAP edge list)
//   dataset NAME KEY      register + materialize a registry dataset
//   snapshot NAME PATH [precompute] [levels=C1,C2,...]
//                         write NAME as a binary v2 snapshot, optionally
//                         with precomputed reduction sections
//   mine NAME K Q [key=value ...]
//                         keys: algo (ours|ours_p|basic|listplex|fp),
//                         threads, max-results, time-limit, tau-ms,
//                         cache (on|off)
//   submit NAME K Q [key=value ...]
//                         like mine, but asynchronous: returns a job id
//                         immediately; the query runs on a worker
//   cancel ID             request cancellation of a queued/running job
//   jobs                  one-line status of every submitted job
//   wait [ID]             block until job ID (or every job) finishes and
//                         print the result line(s)
//   stats                 catalog + result-cache + dispatcher tables
//   evict NAME            drop the resident copy (reloads on next use)
//   help                  command summary
//   quit                  end the session
//
// Blank lines and '#' comments are skipped. A failing command prints
// "error: ..." and the session continues; failures are counted so batch
// callers can exit non-zero.
//
// Concurrency: every query — including synchronous `mine`, which is
// submit-and-wait — executes on the session's ServiceDispatcher. With
// the default single worker the behavior is exactly the historical
// serial session; `--workers N` lets submitted jobs overlap while the
// command loop stays responsive for cancel/jobs/stats. All printing
// happens on the command-loop thread (workers never touch the stream).

#ifndef KPLEX_SERVICE_SERVICE_SESSION_H_
#define KPLEX_SERVICE_SERVICE_SESSION_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "service/dispatcher.h"
#include "service/graph_catalog.h"
#include "service/query_engine.h"

namespace kplex {

struct ServiceSessionOptions {
  /// Catalog memory budget in bytes (0 = unlimited).
  std::size_t memory_budget_bytes = 0;
  /// Result-cache capacity in entries (0 disables caching).
  std::size_t result_cache_capacity = 64;
  /// Echo each command before executing it (script mode readability).
  bool echo = false;
  /// Dispatcher worker threads. 1 (the default) preserves the serial
  /// session semantics; N > 1 lets `submit`ted jobs run concurrently
  /// over the shared catalog. 0 is clamped to 1.
  uint32_t workers = 1;
};

class ServiceSession {
 public:
  explicit ServiceSession(std::ostream& out,
                          ServiceSessionOptions options = {});

  /// Executes one command line. Returns false once `quit` is reached.
  bool ExecuteLine(const std::string& line);

  /// Executes lines from `in` until EOF or `quit`; returns the number of
  /// failed commands.
  uint64_t RunScript(std::istream& in);

  uint64_t errors() const { return errors_; }

  GraphCatalog& catalog() { return catalog_; }
  QueryEngine& engine() { return engine_; }
  ServiceDispatcher& dispatcher() { return *dispatcher_; }

 private:
  void Fail(const Status& status);
  void CmdLoad(const std::vector<std::string>& args);
  void CmdDataset(const std::vector<std::string>& args);
  void CmdSnapshot(const std::vector<std::string>& args);
  void CmdMine(const std::vector<std::string>& args);
  void CmdSubmit(const std::vector<std::string>& args);
  void CmdCancel(const std::vector<std::string>& args);
  void CmdJobs();
  void CmdWait(const std::vector<std::string>& args);
  void CmdStats();
  void CmdEvict(const std::vector<std::string>& args);
  void CmdHelp();

  /// Prints the terminal outcome of a job ("mined ..." / error line).
  /// `prefix` labels asynchronous results ("job 3: ").
  void PrintJobOutcome(const JobInfo& info, const std::string& prefix);

  /// Folds failures of terminal jobs into errors_ (each job once).
  void CountTerminalFailures();

  std::ostream& out_;
  ServiceSessionOptions options_;
  GraphCatalog catalog_;
  QueryEngine engine_;
  // Pointer so the session stays movable-free but constructible before
  // the dispatcher spins up its workers (engine_ must outlive it; the
  // declaration order here is the destruction order guarantee).
  std::unique_ptr<ServiceDispatcher> dispatcher_;
  // Failed-job ids already counted toward errors_: a job failure is one
  // error no matter how often (or through which command) it surfaces.
  std::set<uint64_t> counted_failed_jobs_;
  uint64_t errors_ = 0;
};

}  // namespace kplex

#endif  // KPLEX_SERVICE_SERVICE_SESSION_H_
