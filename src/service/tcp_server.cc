#include "service/tcp_server.h"

#if defined(__unix__) || defined(__APPLE__)
#define KPLEX_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#endif

#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "service/service_session.h"
#include "util/logging.h"

namespace kplex {

// One accepted socket: its fd, serving thread, and per-connection
// session state. The session lives on the thread; `done` lets the
// accept loop reap finished threads without blocking on live ones.
struct TcpServer::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> done{false};
};

#if KPLEX_HAVE_SOCKETS

namespace {

/// Lines longer than this are a protocol violation (no legitimate
/// command approaches it); the connection is told and closed instead of
/// buffering without bound.
constexpr std::size_t kMaxLineBytes = 1 << 20;

Counter& ConnectionsTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_tcp_connections_total");
  return counter;
}
Counter& RefusedTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_tcp_refused_total");
  return counter;
}
Gauge& ActiveConnectionsGauge() {
  static Gauge& gauge =
      MetricsRegistry::Global().GetGauge("kplex_tcp_active_connections");
  return gauge;
}
Counter& BytesReadTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_tcp_bytes_read_total");
  return counter;
}
Counter& BytesWrittenTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_tcp_bytes_written_total");
  return counter;
}

bool WriteAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a vanished client must surface as EPIPE, not kill
    // the server process with SIGPIPE.
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
    BytesWrittenTotal().Increment(static_cast<uint64_t>(n));
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(std::shared_ptr<ServiceApi> api, TcpServerOptions options)
    : TcpServer(
          [api](std::ostream& out) -> std::unique_ptr<WireSession> {
            return std::make_unique<ServiceSession>(out, api, /*echo=*/false);
          },
          [api] { api->CancelAllJobs(); }, std::move(options)) {}

TcpServer::TcpServer(SessionFactory factory, std::function<void()> stop_hook,
                     TcpServerOptions options)
    : factory_(std::move(factory)),
      stop_hook_(std::move(stop_hook)),
      options_(std::move(options)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("server is already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("cannot create socket: ") +
                           std::strerror(errno));
  }
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in address = {};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse listen address '" +
                                   options_.host + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("cannot bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " + error);
  }
  if (::listen(fd, 64) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("cannot listen: " + error);
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IoError("cannot read the bound port: " + error);
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      // Only a dead listen socket ends the loop. Everything else is a
      // per-connection or transient condition — a client that died in
      // the backlog (ECONNABORTED, EPROTO, ENETDOWN, ...) or a
      // momentary fd shortage — and exiting on one would leave the
      // kernel completing handshakes nobody ever services.
      if (errno == EBADF || errno == EINVAL || errno == ENOTSOCK) {
        break;  // listen socket shut down (Stop) or never valid
      }
      if (errno == EMFILE || errno == ENFILE) {
        KPLEX_LOG(Warning) << "tcp server: accept failed transiently: "
                           << std::strerror(errno);
        // Back off briefly so the loop doesn't spin while the process
        // is out of descriptors.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      continue;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ReapFinishedLocked();
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    if (connections_.size() >= options_.max_connections) {
      ++refused_;
      RefusedTotal().Increment();
      Response response;
      response.payload = ErrorResponse{Status::FailedPrecondition(
          "connection limit reached (" +
          std::to_string(options_.max_connections) + ")")};
      std::ostringstream line;
      FormatTextResponse(response, line);
      WriteAll(fd, line.str());
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
      continue;
    }
    ++accepted_;
    ConnectionsTotal().Increment();
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connection->thread = std::thread([this, raw] { ServeConnection(raw); });
    connections_.push_back(std::move(connection));
  }
}

void TcpServer::ServeConnection(Connection* connection) {
  ActiveConnectionsGauge().Add(1);
  std::ostringstream out;
  const std::unique_ptr<WireSession> session_owner = factory_(out);
  WireSession& session = *session_owner;

  // Hangup watcher: while this thread is blocked inside a synchronous
  // command (a long `mine`), nobody reads the socket — so a second,
  // poll-based eye notices the peer *vanishing* and cancels the
  // session's jobs (mine's included: the session records the job id
  // before it blocks). Only a full hangup or reset (POLLHUP/POLLERR —
  // a crashed or abortively-closed client) counts as vanished; an
  // orderly half-close (FIN) is the normal "input done, still reading
  // responses" shape of `printf ... | nc` pipelines, whose in-flight
  // work must run to completion. CancelOutstandingJobs is the one
  // session method that is cross-thread safe.
  std::atomic<bool> connection_done{false};
  std::thread watcher([this, connection, &session, &connection_done] {
    while (!connection_done.load(std::memory_order_acquire) &&
           !stopping_.load(std::memory_order_acquire)) {
      pollfd probe = {};
      probe.fd = connection->fd;
      probe.events = 0;  // error/hangup events are always reported
      const int ready = ::poll(&probe, 1, 100);
      if (ready > 0 &&
          (probe.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
        session.CancelOutstandingJobs();
        return;
      }
    }
  });

  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    // Drain every complete line before reading more bytes.
    std::size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const bool keep_going = session.ExecuteLine(line);
      const std::string bytes = out.str();
      out.str("");
      if (!bytes.empty() && !WriteAll(connection->fd, bytes)) open = false;
      if (!keep_going) open = false;
    }
    if (!open) break;
    if (buffer.size() > kMaxLineBytes) {
      Response response;
      response.payload = ErrorResponse{Status::InvalidArgument(
          "line exceeds the 1 MiB frame limit")};
      std::ostringstream error_line;
      if (session.mode() == WireMode::kText) {
        FormatTextResponse(response, error_line);
      } else {
        error_line << FormatFramedResponse(response) << "\n";
      }
      WriteAll(connection->fd, error_line.str());
      break;
    }
    const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // client closed (or Stop shut the socket down)
    BytesReadTotal().Increment(static_cast<uint64_t>(n));
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  // Teardown: stop the watcher first (it polls the fd this block is
  // about to close), then cancel whatever this client left queued or
  // running — abandoned work must not occupy dispatcher workers.
  connection_done.store(true, std::memory_order_release);
  watcher.join();
  session.CancelOutstandingJobs();
  {
    // The mutex orders this close against Stop()'s shutdown() on the
    // same fd: once fd is -1, Stop leaves it alone (no shutdown on a
    // recycled descriptor number).
    std::lock_guard<std::mutex> lock(mutex_);
    ::shutdown(connection->fd, SHUT_RDWR);
    ::close(connection->fd);
    connection->fd = -1;
  }
  connection->done.store(true, std::memory_order_release);
  ActiveConnectionsGauge().Add(-1);
}

void TcpServer::ReapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock accept(): shutdown alone is not portable for listen
  // sockets, but close always is; the accept loop exits on failure.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;

  // Unblock connection reads, then release any worker still mining for
  // a session that is about to be torn down: server shutdown cancels
  // outstanding work (the per-job flags unwind running queries in
  // milliseconds), so joins below are prompt even mid-query.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& connection : connections_) {
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  if (stop_hook_) stop_hook_();
  std::vector<std::unique_ptr<Connection>> to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    to_join.swap(connections_);
  }
  for (auto& connection : to_join) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

TcpServer::Stats TcpServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.accepted = accepted_;
  stats.refused = refused_;
  for (const auto& connection : connections_) {
    if (!connection->done.load(std::memory_order_acquire)) ++stats.active;
  }
  return stats;
}

#else  // !KPLEX_HAVE_SOCKETS

TcpServer::TcpServer(std::shared_ptr<ServiceApi> api, TcpServerOptions options)
    : TcpServer(SessionFactory(), std::function<void()>(),
                std::move(options)) {
  (void)api;
}

TcpServer::TcpServer(SessionFactory factory, std::function<void()> stop_hook,
                     TcpServerOptions options)
    : factory_(std::move(factory)),
      stop_hook_(std::move(stop_hook)),
      options_(std::move(options)) {}

TcpServer::~TcpServer() = default;

Status TcpServer::Start() {
  return Status::Unimplemented("TCP serving requires POSIX sockets");
}

void TcpServer::Stop() {}

TcpServer::Stats TcpServer::stats() const { return {}; }

#endif  // KPLEX_HAVE_SOCKETS

}  // namespace kplex
