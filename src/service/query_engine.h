// QueryEngine: the request front end of the query service. A request
// names a catalog graph plus the enumeration parameters; the engine
// resolves the graph through the GraphCatalog, dispatches to the
// sequential or parallel enumerator (or a baseline driver), and caches
// the outcome in an LRU result cache keyed by the canonical query
// signature. The signature covers exactly the parameters that determine
// the result *set* (graph, k, q, algo, max_results) — thread count and
// time limits only affect how fast the same answer is produced, so a
// warm repeat of a query returns instantly regardless of them. Runs
// that ended early (timeout or cancellation) produced a partial set and
// are never cached; a max_results-truncated run is cached only when it
// was sequential (parallel workers race for the cap, so their subset is
// not reproducible).
//
// Thread-safety: Run() may be called from any number of threads (the
// ServiceDispatcher's workers all share one engine). Cache bookkeeping
// is mutex-guarded, and identical concurrent queries are single-flight:
// the first caller executes, the others wait for its answer and serve
// it as a cache hit instead of stampeding the same enumeration N times.
// Single-flight holds even with caching disabled (cache_capacity 0) —
// the leader's answer travels through the in-flight latch, it just is
// not retained afterwards. A waiter whose own cancel flag flips while
// waiting unblocks promptly with a cancelled result. See
// docs/CONCURRENCY.md.

#ifndef KPLEX_SERVICE_QUERY_ENGINE_H_
#define KPLEX_SERVICE_QUERY_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/enumerator.h"
#include "service/graph_catalog.h"
#include "service/lru.h"
#include "util/status.h"

namespace kplex {

class ResultStore;

/// Algorithm selector mirroring `kplex_cli mine --algo`.
enum class QueryAlgo { kOurs, kOursP, kBasic, kListPlex, kFp };

/// Parses "ours", "ours_p", "basic", "listplex", "fp".
StatusOr<QueryAlgo> ParseQueryAlgo(const std::string& name);
const char* QueryAlgoName(QueryAlgo algo);

struct QueryRequest {
  std::string graph;  ///< catalog name
  uint32_t k = 2;
  uint32_t q = 4;
  QueryAlgo algo = QueryAlgo::kOurs;
  /// 0 runs the sequential engine; > 0 the parallel one with that many
  /// workers. Ignored for the fp baseline (sequential only).
  uint32_t threads = 0;
  /// Straggler timeout for the parallel engine, milliseconds.
  double tau_ms = 0.1;
  uint64_t max_results = 0;
  double time_limit_seconds = 0;
  /// CTCP whole-graph preprocessing (EnumOptions::use_ctcp_preprocess):
  /// sound with every variant, strictly stronger than the (q-k)-core
  /// when q > 2k, and it disables precompute-section reuse (CTCP is a
  /// different reduction). Part of the signature: same answer, but the
  /// cached entry stays attributable to the pipeline that produced it.
  bool use_ctcp = false;
  /// Bypass the result cache for this request (still records the miss).
  bool use_cache = true;
  /// Shard of the canonical seed space to enumerate, as a half-open
  /// index range into the reduced graph's seed order (EnumOptions::
  /// seed_range; the defaults select everything). Part of the signature
  /// when non-default — a shard is a complete, deterministic answer
  /// *for its range*. Unsupported by the fp baseline (rejected).
  uint32_t seed_begin = 0;
  uint32_t seed_end = UINT32_MAX;
  /// Collect the plex bodies of the answer (wire option results=stream).
  /// Part of the signature (`|bodies=on`): the cached entry carries the
  /// bodies, so only body-carrying entries may serve body requests.
  bool collect_bodies = false;
  /// Preferred result_chunk size for streamed delivery. Presentation
  /// only — it never changes the result set, so it is NOT part of the
  /// signature. 0 means the server default.
  uint32_t chunk_size = 0;
  /// Server-side selection (wire `filter=size>=S[,size<=T]` and
  /// `contain=V`): only matching plexes are counted, fingerprinted and
  /// collected. Each is part of the signature when set. Zero size
  /// bounds mean "unbounded".
  uint64_t filter_min_size = 0;
  uint64_t filter_max_size = 0;
  bool has_contain = false;
  uint32_t contain = 0;
  /// Keep only the K largest plexes (wire `top=K`; 0 keeps all).
  /// Selection is deterministic (size, then lexicographic) and happens
  /// in the sink, so the served set is emission-order independent.
  uint64_t top_k = 0;
  /// Maximum-k-plex mode (wire `mode=maximum`): serve FindMaximumKPlex
  /// instead of enumeration — the answer is the single largest k-plex
  /// (count 0 or 1). q, algo and threads do not apply and are ignored;
  /// filters/top/cursor/seed ranges are rejected.
  bool maximum = false;
  /// Resume cursor (wire `cursor=SEED:ORDINAL`) from a previous
  /// max_results-truncated sequential run: enumeration restarts at seed
  /// index cursor_seed and drops the first cursor_ordinal emissions.
  /// Sequential engines only (parallel truncation is nondeterministic).
  bool has_cursor = false;
  uint32_t cursor_seed = 0;
  uint64_t cursor_ordinal = 0;
  /// Optional cooperative cancellation, forwarded into EnumOptions.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional cooperative yield (work-stealing), forwarded into
  /// EnumOptions::yield. A yielded run is a complete answer for
  /// QueryResult::covered_begin/covered_end only, so it is never cached
  /// and never shared through the single-flight latch.
  const std::atomic<bool>* yield = nullptr;
  /// Trace id correlating this query's spans (obs/trace.h). 0 lets the
  /// engine allocate one. Not part of the cache signature.
  uint64_t trace_id = 0;

  /// True when the request selects a proper shard rather than the whole
  /// seed space.
  bool HasSeedRange() const {
    return seed_begin != 0 || seed_end != UINT32_MAX;
  }

  /// True when any server-side selection predicate is set.
  bool HasFilter() const {
    return filter_min_size > 0 || filter_max_size > 0 || has_contain;
  }
};

struct QueryResult {
  uint64_t num_plexes = 0;
  std::size_t max_plex_size = 0;
  /// Order-independent result-set fingerprint (HashingSink), letting
  /// clients assert that two runs produced the same set.
  uint64_t fingerprint = 0;
  /// The raw XOR half of the fingerprint (HashingSink::xor_hash) — the
  /// mergeable part: a coordinator XORs shards' values and re-derives
  /// the composite fingerprint from the summed count (core/sink.h
  /// MergeableResult).
  uint64_t fingerprint_xor = 0;
  /// Seed count of the reduced graph — the size of the canonical seed
  /// space a coordinator plans shard ranges over (independent of any
  /// seed range this request carried).
  uint64_t total_seeds = 0;
  /// Wall seconds of the run that produced the answer. For a cache hit
  /// this is the *original* run's time; `seconds` is the serving time.
  double compute_seconds = 0;
  double seconds = 0;
  bool timed_out = false;
  bool stopped_early = false;
  bool cancelled = false;
  /// True when the run stopped at a seed boundary because the request's
  /// yield flag was set; the result is then complete for the covered
  /// range below, and only for it.
  bool yielded = false;
  /// Half-open range of canonical seed indices this answer fully
  /// covers: the clamped requested range, except covered_end drops to
  /// the yield boundary on a yielded run. Meaningless on cancelled /
  /// timed-out runs.
  uint32_t covered_begin = 0;
  uint32_t covered_end = 0;
  bool from_cache = false;
  /// True when the answer came from the durable result store (the disk
  /// tier behind the memory cache; from_cache is also set — a disk hit
  /// is a warm hit). See store/result_store.h.
  bool from_store = false;
  /// True when the run consumed precomputed snapshot sections instead
  /// of peeling the (q-k)-core itself (counters prove the skip).
  bool reduction_precomputed = false;
  /// The plex bodies of the answer, present iff the request asked for
  /// them (collect_bodies / top_k / maximum). Shared so cache copies
  /// stay O(1). Sequential enumeration keeps emission order (the order
  /// cursors paginate); parallel runs are sorted lexicographically;
  /// top=K is best-first.
  std::shared_ptr<const std::vector<std::vector<VertexId>>> plexes;
  /// Resume cursor: set when a sequential run stopped at max_results
  /// with more of the enumeration left. Feeding it back as the
  /// request's cursor continues exactly where this run stopped.
  bool has_cursor = false;
  uint32_t cursor_seed = 0;
  uint64_t cursor_ordinal = 0;
  std::string signature;
};

class QueryEngine {
 public:
  /// `cache_capacity` bounds the number of cached query results
  /// (0 disables caching entirely).
  explicit QueryEngine(GraphCatalog& catalog, std::size_t cache_capacity = 64)
      : catalog_(catalog), cache_capacity_(cache_capacity) {}

  /// Executes (or serves from cache) one query.
  StatusOr<QueryResult> Run(const QueryRequest& request);

  /// Attaches the durable result store as the disk tier behind the
  /// memory cache: consulted on a memory miss (keyed by graph content
  /// hash + full signature), populated when a run completes — never on
  /// cancelled, timed-out, yielded, truncated, or cursor runs. The
  /// store is not owned and must outlive the engine (ServiceApi's
  /// member order guarantees this). Pass nullptr to detach.
  void AttachStore(ResultStore* store) {
    store_.store(store, std::memory_order_release);
  }
  ResultStore* store() const {
    return store_.load(std::memory_order_acquire);
  }

  /// The parameter part of the cache key: "graph|k|q|algo|max" — all
  /// request parameters that determine the result set, nothing else.
  /// The full signature Run() caches under appends "|pre=TAG", the
  /// catalog's snapshot-section availability for the graph
  /// (GraphCatalog::PrecomputeTag) — precompute does not change the
  /// result set, but keying on availability keeps cached entries
  /// attributable to the exact pipeline that produced them.
  static std::string CanonicalSignature(const QueryRequest& request);

  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
  };
  CacheStats cache_stats() const;

  void ClearCache();

  /// Drops cached results for one catalog graph (call when its backing
  /// data changes).
  void InvalidateGraph(const std::string& graph_name);

  GraphCatalog& catalog() { return catalog_; }

 private:
  // Single-flight latch: present in in_flight_ while one thread
  // executes the signature; waiters block on cv (against mutex_) and
  // serve `result` once done flips (has_result is false when the
  // leader's run was partial or errored — waiters then retry as
  // leaders themselves).
  struct InFlight {
    std::condition_variable cv;
    bool done = false;
    bool has_result = false;
    QueryResult result;
  };

  StatusOr<QueryResult> Execute(const QueryRequest& request,
                                uint64_t trace_id);
  /// Releases the latch; `result` non-null shares a complete answer
  /// with the waiters.
  void FinishInFlight(const std::string& signature,
                      const QueryResult* result);
  /// Inserts into the memory cache and trims to capacity. Caller holds
  /// mutex_.
  void CacheInsertLocked(const std::string& signature,
                         const QueryResult& result);

  GraphCatalog& catalog_;
  std::atomic<ResultStore*> store_{nullptr};
  const std::size_t cache_capacity_;
  mutable std::mutex mutex_;
  std::map<std::string, QueryResult> cache_;
  LruList<std::string> cache_lru_;
  std::map<std::string, std::shared_ptr<InFlight>> in_flight_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace kplex

#endif  // KPLEX_SERVICE_QUERY_ENGINE_H_
