// TcpClient: the client half of the service's TCP plumbing — a
// blocking, line-oriented connection to a `serve --listen` process.
// The shard coordinator runs one per worker endpoint; tests and tools
// can use it to script a server. Deliberately minimal: connect, send a
// line, read a line. An optional timeout guards both directions so a
// hung worker can surface as a structured error instead of a stuck
// coordinator (timeouts report TIMED_OUT, disconnects IO_ERROR — the
// coordinator retries the shard elsewhere either way).
//
// POSIX sockets only, like TcpServer; Connect reports Unimplemented on
// other platforms. Not thread-safe: one thread drives one client.

#ifndef KPLEX_SERVICE_TCP_CLIENT_H_
#define KPLEX_SERVICE_TCP_CLIENT_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "util/status.h"

namespace kplex {

class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;
  TcpClient(TcpClient&& other) noexcept;
  TcpClient& operator=(TcpClient&& other) noexcept;

  /// Connects to host:port. `timeout_seconds` (0 = none) bounds every
  /// subsequent send and receive, not the connect itself.
  Status Connect(const std::string& host, uint16_t port,
                 double timeout_seconds = 0);

  bool connected() const { return fd_ >= 0; }

  /// Sends `line` plus a trailing newline.
  Status SendLine(const std::string& line);

  /// Reads up to the next newline (stripped). IO_ERROR on EOF or a
  /// reset, TIMED_OUT when the receive timeout elapses.
  StatusOr<std::string> ReadLine();

  /// Half-close from another thread: unblocks a SendLine/ReadLine the
  /// owning thread is parked in (they then return IO_ERROR). This is
  /// the ONE cross-thread-safe method — the coordinator uses it to
  /// abort lanes blocked on in-flight shards. The fd stays allocated
  /// until the owner calls Close(), so a concurrent Shutdown can never
  /// touch a recycled descriptor.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes past the last returned newline
  /// Serializes Shutdown against Close (fd lifecycle only; data calls
  /// stay single-threaded).
  std::mutex fd_mutex_;
};

}  // namespace kplex

#endif  // KPLEX_SERVICE_TCP_CLIENT_H_
