// TcpServer: the network transport of the query service. An accept
// loop hands each connection to its own thread running a WireSession
// produced by the server's session factory. The default factory makes
// a ServiceSession over the server's shared ServiceApi, so every
// client sees one catalog, one result cache, and one dispatcher —
// exactly the stdin session protocol (text grammar by default, `hello
// mode=framed` for JSON lines), newline-delimited in both directions.
// The coordinator daemon (src/coord/) reuses the same transport with
// its own session type through the factory constructor.
//
// Lifecycle and robustness:
//  - Start() binds/listens (port 0 picks an ephemeral port, readable
//    via port()) and spawns the accept thread.
//  - A connection past the connection cap receives one structured
//    error line and is closed without a session.
//  - A client disconnect cancels that session's outstanding jobs
//    through the existing per-job cancel flags, so abandoned work does
//    not occupy dispatcher workers. Orderly EOF (FIN: the tail of a
//    `printf ... | nc` pipeline) first drains the already-received
//    commands — in-flight work completes and its responses are
//    delivered — then cancels whatever is still queued at teardown. A
//    full hangup or reset (crashed client, abortive close) is spotted
//    by a per-connection poll watcher and cancels immediately, even
//    while the session thread is blocked inside a synchronous mine.
//  - Stop() is graceful: stops accepting, shuts down every connection
//    socket (unblocking reads), cancels all outstanding dispatcher
//    jobs so no worker pins a join, and joins every thread. The
//    destructor calls Stop().
//
// The server never touches stdin/stdout; `kplex_cli serve --listen`
// composes it with an optional preload script and signal-driven
// shutdown. See docs/SERVE.md for the wire reference.

#ifndef KPLEX_SERVICE_TCP_SERVER_H_
#define KPLEX_SERVICE_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "service/service_api.h"
#include "service/wire_session.h"
#include "util/status.h"

namespace kplex {

struct TcpServerOptions {
  /// Interface to bind. Loopback by default: exposing the service
  /// beyond the host is a deployment decision, not a default.
  std::string host = "127.0.0.1";
  /// Port to bind; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  /// Concurrent-connection cap; connections beyond it are refused with
  /// a structured error line.
  uint32_t max_connections = 64;
};

class TcpServer {
 public:
  /// Builds one connection's session writing to `out`. Called on the
  /// accept thread; the session itself runs on the connection thread.
  using SessionFactory =
      std::function<std::unique_ptr<WireSession>(std::ostream& out)>;

  /// Worker transport: each connection gets a ServiceSession over the
  /// shared api; Stop() cancels all dispatcher jobs.
  explicit TcpServer(std::shared_ptr<ServiceApi> api,
                     TcpServerOptions options = {});

  /// Generalized transport: each connection gets factory(out), and
  /// stop_hook (may be empty) runs during Stop() after reads are
  /// unblocked, before connection threads are joined — the place to
  /// cancel whatever work could pin a session thread.
  TcpServer(SessionFactory factory, std::function<void()> stop_hook,
            TcpServerOptions options = {});

  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts accepting. IoError when the address
  /// cannot be bound; Unimplemented on platforms without sockets.
  Status Start();

  /// Graceful shutdown (see the file comment). Idempotent; safe to call
  /// while connections are mid-command.
  void Stop();

  /// The bound port (after a successful Start); meaningful with
  /// options.port == 0.
  uint16_t port() const { return port_; }

  struct Stats {
    uint64_t accepted = 0;  ///< connections served (sessions started)
    uint64_t refused = 0;   ///< connections rejected by the cap
    uint64_t active = 0;    ///< sessions currently open
  };
  Stats stats() const;

 private:
  struct Connection;

  void AcceptLoop();
  void ServeConnection(Connection* connection);
  /// Joins and erases finished connection threads (called under lock).
  void ReapFinishedLocked();

  SessionFactory factory_;
  std::function<void()> stop_hook_;
  const TcpServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  uint64_t accepted_ = 0;
  uint64_t refused_ = 0;
};

}  // namespace kplex

#endif  // KPLEX_SERVICE_TCP_SERVER_H_
