// LRU bookkeeping shared by GraphCatalog (graph eviction under a memory
// budget) and QueryEngine (bounded result cache): an ordered list of
// keys, most recently used first, with O(1) touch/erase and eviction
// candidates taken from the back. Deliberately not thread-safe on its
// own: both owners mutate it only under their instance mutex, together
// with the map it indexes, so the list and the map can never disagree
// (see docs/CONCURRENCY.md for the service locking discipline).

#ifndef KPLEX_SERVICE_LRU_H_
#define KPLEX_SERVICE_LRU_H_

#include <cstddef>
#include <list>
#include <unordered_map>

namespace kplex {

template <typename Key>
class LruList {
 public:
  /// Marks `key` most recently used, inserting it if absent.
  void Touch(const Key& key) {
    auto it = pos_.find(key);
    if (it != pos_.end()) order_.erase(it->second);
    order_.push_front(key);
    pos_[key] = order_.begin();
  }

  void Erase(const Key& key) {
    auto it = pos_.find(key);
    if (it == pos_.end()) return;
    order_.erase(it->second);
    pos_.erase(it);
  }

  bool Contains(const Key& key) const { return pos_.count(key) > 0; }

  bool empty() const { return order_.empty(); }
  std::size_t size() const { return order_.size(); }

  /// The least recently used key. Undefined when empty().
  const Key& LeastRecent() const { return order_.back(); }

  /// Keys from most to least recently used.
  const std::list<Key>& order() const { return order_; }

 private:
  std::list<Key> order_;
  std::unordered_map<Key, typename std::list<Key>::iterator> pos_;
};

}  // namespace kplex

#endif  // KPLEX_SERVICE_LRU_H_
