#include "service/service_api.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "core/seed_plan.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace kplex {

ServiceApi::ServiceApi(ServiceApiOptions options)
    : catalog_(options.memory_budget_bytes),
      engine_(catalog_, options.result_cache_capacity) {
  if (!options.store_dir.empty()) {
    StoreOptions store_options;
    store_options.directory = options.store_dir;
    store_options.byte_budget = options.store_byte_budget;
    auto opened = ResultStore::Open(std::move(store_options));
    if (opened.ok()) {
      store_ = std::move(*opened);
      engine_.AttachStore(store_.get());
    } else {
      store_status_ = opened.status();
    }
  }
  DispatcherOptions dispatch;
  dispatch.workers = options.workers == 0 ? 1 : options.workers;
  dispatcher_ = std::make_unique<ServiceDispatcher>(engine_, dispatch);
}

namespace {

void SanitizeJob(JobInfo& job) {
  if (job.state == JobState::kFailed) {
    job.status = SanitizeErrorStatus(job.status);
  }
}

}  // namespace

Response ServiceApi::Execute(const Request& request) {
  // Execute is the one chokepoint every front end funnels through, so
  // the per-verb request counters and latency histograms live here —
  // stdin sessions, TCP connections, and shard workers all count.
  const char* verb = RequestVerbName(request.payload);
  MetricsRegistry::Global()
      .GetCounter(std::string("kplex_requests_") + verb + "_total")
      .Increment();
  Histogram& verb_latency = MetricsRegistry::Global().GetHistogram(
      std::string("kplex_request_") + verb + "_seconds");
  WallTimer timer;

  Response response;
  response.request_id = request.id;
  response.payload = std::visit(
      [this](const auto& payload) { return Handle(payload); },
      request.payload);
  verb_latency.Observe(timer.ElapsedSeconds());
  if (std::holds_alternative<ErrorResponse>(response.payload)) {
    MetricsRegistry::Global()
        .GetCounter("kplex_requests_failed_total")
        .Increment();
  }
  // One sanitation chokepoint: whatever layer produced a Status — a
  // direct command failure or a failed job's stored error — the
  // message a client sees never carries absolute host paths.
  if (auto* error = std::get_if<ErrorResponse>(&response.payload)) {
    error->status = SanitizeErrorStatus(error->status);
  } else if (auto* mine = std::get_if<MineResponse>(&response.payload)) {
    SanitizeJob(mine->job);
  } else if (auto* shard =
                 std::get_if<ShardResultResponse>(&response.payload)) {
    SanitizeJob(shard->job);
  } else if (auto* wait = std::get_if<WaitResponse>(&response.payload)) {
    SanitizeJob(wait->job);
  } else if (auto* jobs = std::get_if<JobsResponse>(&response.payload)) {
    for (JobInfo& job : jobs->jobs) SanitizeJob(job);
  }
  return response;
}

void ServiceApi::CancelAllJobs() {
  for (const JobInfo& info : dispatcher_->Jobs()) {
    if (info.state == JobState::kQueued || info.state == JobState::kRunning) {
      (void)dispatcher_->Cancel(info.id);  // lost races are fine
    }
  }
}

ResponsePayload ServiceApi::Handle(const HelloRequest& hello) {
  if (hello.version == 0) {
    return ErrorResponse{Status::InvalidArgument(
        "unsupported protocol version 0 (this server speaks 1.." +
        std::to_string(kProtocolVersion) + ")")};
  }
  HelloResponse response;
  response.version = std::min(hello.version, kProtocolVersion);
  response.mode = hello.mode;
  return response;
}

ResponsePayload ServiceApi::Handle(const LoadRequest& load) {
  Status registered = catalog_.RegisterFile(load.name, load.path);
  if (!registered.ok()) return ErrorResponse{registered};
  auto graph = catalog_.Get(load.name);  // materialize eagerly
  if (!graph.ok()) {
    // A failed load must not leave a half-registered entry behind.
    catalog_.Unregister(load.name);
    return ErrorResponse{graph.status()};
  }
  LoadResponse response;
  response.name = load.name;
  response.num_vertices = (*graph)->NumVertices();
  response.num_edges = (*graph)->NumEdges();
  for (const auto& info : catalog_.Entries()) {
    if (info.name == load.name) {
      response.load_seconds = info.last_load_seconds;
    }
  }
  return response;
}

ResponsePayload ServiceApi::Handle(const DatasetRequest& dataset) {
  Status registered = catalog_.RegisterDataset(dataset.name, dataset.key);
  if (!registered.ok()) return ErrorResponse{registered};
  auto graph = catalog_.Get(dataset.name);
  if (!graph.ok()) {
    catalog_.Unregister(dataset.name);
    return ErrorResponse{graph.status()};
  }
  LoadResponse response;
  response.name = dataset.name;
  response.num_vertices = (*graph)->NumVertices();
  response.num_edges = (*graph)->NumEdges();
  response.dataset_key = dataset.key;
  return response;
}

ResponsePayload ServiceApi::Handle(const SnapshotRequest& snapshot) {
  SnapshotWriteOptions options;
  options.include_precompute = snapshot.include_precompute;
  options.core_mask_levels = snapshot.core_mask_levels;
  Status saved = catalog_.SaveSnapshotFor(snapshot.name, snapshot.path,
                                          options);
  if (!saved.ok()) return ErrorResponse{saved};
  SnapshotResponse response;
  response.name = snapshot.name;
  response.path = snapshot.path;
  response.with_precompute = options.include_precompute;
  return response;
}

ResponsePayload ServiceApi::Handle(const MineRequest& mine) {
  // Synchronous mine is submit-and-wait on the shared dispatcher: one
  // execution path for every query, and byte-identical output to the
  // historical serial session.
  auto id = dispatcher_->Submit(mine.query);
  if (!id.ok()) return ErrorResponse{id.status()};
  auto info = dispatcher_->Wait(*id);
  if (!info.ok()) return ErrorResponse{info.status()};
  return MineResponse{*std::move(info)};
}

StatusOr<ServiceApi::ShardSubmission> ServiceApi::SubmitShard(
    const MineShardRequest& shard) {
  // Shard admission: before any work, prove this worker holds the same
  // graph bytes the coordinator planned against. The error carries both
  // hashes so a mismatched-snapshot refusal is diagnosable from logs.
  auto hash = catalog_.ContentHash(shard.query.graph);
  if (!hash.ok()) return hash.status();
  if (shard.expected_hash != 0 && *hash != shard.expected_hash) {
    char expected[24], actual[24];
    std::snprintf(expected, sizeof(expected), "0x%016llx",
                  static_cast<unsigned long long>(shard.expected_hash));
    std::snprintf(actual, sizeof(actual), "0x%016llx",
                  static_cast<unsigned long long>(*hash));
    return Status::FailedPrecondition(
        "graph content hash mismatch for '" + shard.query.graph +
        "': coordinator expected " + expected + ", this worker has " +
        std::string(actual) + " (mismatched snapshot?)");
  }
  // Same execution path as a synchronous mine: submit (+ wait in the
  // caller) on the shared dispatcher, so shard jobs are cancellable and
  // visible in `jobs` like any other work.
  auto id = dispatcher_->Submit(shard.query);
  if (!id.ok()) return id.status();
  return ShardSubmission{*id, *hash};
}

ResponsePayload ServiceApi::Handle(const MineShardRequest& shard) {
  auto submitted = SubmitShard(shard);
  if (!submitted.ok()) return ErrorResponse{submitted.status()};
  auto info = dispatcher_->Wait(submitted->job);
  if (!info.ok()) return ErrorResponse{info.status()};
  // A failed job rides inside the shard response (state "failed" +
  // error), like mine/wait outcomes, so session error accounting stays
  // one-per-job.
  return ShardResultResponse{*std::move(info), submitted->content_hash};
}

ResponsePayload ServiceApi::Handle(const PlanRequest& plan) {
  if (plan.use_ctcp) {
    // CTCP replaces the core reduction, so its seed order (and seed
    // count) differ from the (q-k)-core ordering this probe reports.
    // Serving core-order estimates for a ctcp mine would misalign the
    // coordinator's chunk boundaries; refuse and let it fall back to
    // uniform chunking over an empty-range mineshard probe.
    return ErrorResponse{Status::InvalidArgument(
        "plan does not support ctcp (its seed order differs from the "
        "core ordering); probe with an empty-range mineshard instead")};
  }
  auto resolved = catalog_.GetFull(plan.graph);
  if (!resolved.ok()) return ErrorResponse{resolved.status()};
  auto hash = catalog_.ContentHash(plan.graph);
  if (!hash.ok()) return ErrorResponse{hash.status()};
  EnumOptions options = EnumOptions::Ours(plan.k, plan.q);
  options.precompute = resolved->precompute.get();
  auto computed = ComputeSeedPlan(*resolved->graph, options);
  if (!computed.ok()) return ErrorResponse{computed.status()};
  PlanResponse response;
  response.graph = plan.graph;
  response.total_seeds = computed->total_seeds;
  response.content_hash = *hash;
  response.degeneracy = computed->degeneracy;
  response.degrees = std::move(computed->degrees);
  response.coreness = std::move(computed->coreness);
  response.precomputed =
      computed->core_precomputed && computed->order_precomputed;
  response.seconds = computed->seconds;
  return response;
}

ResponsePayload ServiceApi::Handle(const ShardSubmitRequest& shard) {
  auto submitted =
      SubmitShard(MineShardRequest{shard.query, shard.expected_hash});
  if (!submitted.ok()) return ErrorResponse{submitted.status()};
  return ShardSubmitResponse{submitted->job, submitted->content_hash};
}

ResponsePayload ServiceApi::Handle(const ShardWaitRequest& wait) {
  auto info = dispatcher_->Wait(wait.job);
  if (!info.ok()) return ErrorResponse{info.status()};
  // The job's graph may have been evicted since submission; a zero hash
  // just means "unverifiable now" — the shardsubmit ack already carried
  // the verified one.
  auto hash = catalog_.ContentHash(info->request.graph);
  return ShardResultResponse{*std::move(info), hash.ok() ? *hash : 0};
}

ResponsePayload ServiceApi::Handle(const ShardStopRequest& stop) {
  Status yielded = dispatcher_->Yield(stop.job);
  if (!yielded.ok()) return ErrorResponse{yielded};
  return ShardStopResponse{stop.job};
}

namespace {

ResponsePayload CoordinatorOnlyVerb(const char* verb) {
  return ErrorResponse{Status::InvalidArgument(
      std::string("'") + verb +
      "' is a coordinator verb; this endpoint is a worker (connect to "
      "the coordinator daemon instead)")};
}

}  // namespace

ResponsePayload ServiceApi::Handle(const RegisterRequest&) {
  return CoordinatorOnlyVerb("register");
}

ResponsePayload ServiceApi::Handle(const HeartbeatRequest&) {
  return CoordinatorOnlyVerb("heartbeat");
}

ResponsePayload ServiceApi::Handle(const DrainRequest&) {
  return CoordinatorOnlyVerb("drain");
}

ResponsePayload ServiceApi::Handle(const WorkersRequest&) {
  return CoordinatorOnlyVerb("workers");
}

ResponsePayload ServiceApi::Handle(const SubmitRequest& submit) {
  auto id = dispatcher_->Submit(submit.query);
  if (!id.ok()) return ErrorResponse{id.status()};
  SubmitResponse response;
  response.job = *id;
  response.query = submit.query;
  return response;
}

ResponsePayload ServiceApi::Handle(const CancelRequest& cancel) {
  Status cancelled = dispatcher_->Cancel(cancel.job);
  if (!cancelled.ok()) return ErrorResponse{cancelled};
  return CancelResponse{cancel.job};
}

ResponsePayload ServiceApi::Handle(const JobsRequest&) {
  return JobsResponse{dispatcher_->Jobs()};
}

ResponsePayload ServiceApi::Handle(const WaitRequest& wait) {
  if (wait.job.has_value()) {
    auto info = dispatcher_->Wait(*wait.job);
    if (!info.ok()) return ErrorResponse{info.status()};
    return WaitResponse{*std::move(info)};
  }
  dispatcher_->Drain();
  WaitAllResponse response;
  response.counts = dispatcher_->Counts();
  for (const JobInfo& info : dispatcher_->Jobs()) {
    if (info.state == JobState::kFailed) {
      response.failed_jobs.push_back(info.id);
    }
  }
  return response;
}

ResponsePayload ServiceApi::Handle(const StatsRequest&) {
  StatsResponse response;
  response.graphs = catalog_.Entries();
  response.resident_bytes = catalog_.ResidentBytes();
  response.mapped_resident_bytes = catalog_.MappedResidentBytes();
  response.memory_budget_bytes = catalog_.MemoryBudgetBytes();
  response.cache = engine_.cache_stats();
  response.jobs = dispatcher_->Counts();
  response.workers = dispatcher_->num_workers();
  response.store = StoreInfo();
  return response;
}

StoreStatusInfo ServiceApi::StoreInfo() {
  StoreStatusInfo info;
  if (store_ == nullptr) return info;
  const ResultStore::Stats stats = store_->stats();
  info.enabled = true;
  info.entries = stats.entries;
  info.bytes = stats.bytes;
  info.byte_budget = stats.byte_budget;
  info.hits = stats.hits;
  info.misses = stats.misses;
  info.writes = stats.writes;
  info.evictions = stats.evictions;
  info.corrupt_entries = stats.corrupt_entries;
  return info;
}

ResponsePayload ServiceApi::Handle(const StoreRequest& store) {
  if (store_ == nullptr) {
    return ErrorResponse{Status::FailedPrecondition(
        "no result store attached (start the server with --store DIR)")};
  }
  StoreResponse response;
  response.evicted = store.evict;
  if (store.evict) {
    const ResultStore::EvictOutcome outcome = store_->EvictAll();
    response.evicted_entries = outcome.entries;
    response.evicted_bytes = outcome.bytes;
  }
  response.info = StoreInfo();
  return response;
}

ResponsePayload ServiceApi::Handle(const MetricsRequest& metrics) {
  if (!metrics.format.empty() && metrics.format != "table" &&
      metrics.format != "prom") {
    return ErrorResponse{Status::InvalidArgument(
        "unknown metrics format '" + metrics.format +
        "' (expected table or prom)")};
  }
  return MetricsResponse{metrics.format,
                         MetricsRegistry::Global().Snapshot()};
}

ResponsePayload ServiceApi::Handle(const EvictRequest& evict) {
  Status evicted = catalog_.Evict(evict.name);
  if (!evicted.ok()) return ErrorResponse{evicted};
  return EvictResponse{evict.name};
}

ResponsePayload ServiceApi::Handle(const HelpRequest&) {
  return HelpResponse{};
}

ResponsePayload ServiceApi::Handle(const QuitRequest&) {
  return ByeResponse{};
}

}  // namespace kplex
