#include "service/shard_coordinator.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "core/sink.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/protocol.h"
#include "service/tcp_client.h"
#include "util/timer.h"

namespace kplex {
namespace {

Counter& ShardAttemptsTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_shard_attempts_total");
  return counter;
}
Counter& ShardRetriesTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_shard_retries_total");
  return counter;
}
Counter& ShardTransportFailuresTotal() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "kplex_shard_transport_failures_total");
  return counter;
}
Counter& ShardVerdictFailuresTotal() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "kplex_shard_verdict_failures_total");
  return counter;
}
Histogram& ShardSeconds() {
  static Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("kplex_shard_seconds");
  return histogram;
}

/// Decoded outcome of one shard round trip. The transport/verdict
/// distinction is made at the *source* of the failure, never inferred
/// from a Status code: a socket failure (SendLine/ReadLine) means the
/// shard may not have completed and is safe to retry elsewhere, while
/// anything decoded from a response frame — even one carrying
/// IO_ERROR — is the worker's verdict and would repeat on any worker.
struct ShardRoundTrip {
  bool transport_failed = false;  ///< socket error; result/verdict unset
  Status verdict;                 ///< worker's structured failure, if any
  ParsedShardResult result;       ///< valid when transport ok && verdict ok
  Status transport_error;         ///< the socket Status when transport_failed
};

struct PlannedShard {
  uint32_t index = 0;
  uint32_t begin = 0;
  uint32_t end = 0;
  uint32_t attempts = 0;  // dispatches so far
};

/// Shared fan-out state: the work queue plus completion/failure
/// bookkeeping, all under one mutex.
struct FanOut {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<PlannedShard> queue;
  uint32_t outstanding = 0;   // shards not yet merged (queued or in flight)
  uint32_t live_workers = 0;  // threads with a usable connection
  /// Endpoints of the live lanes (an endpoint listed twice counts
  /// twice). A retry is only meaningful when some *other* endpoint is
  /// still live — re-dispatching to the very endpoint that just
  /// dropped would burn attempts on a dead worker.
  std::multiset<std::string> live_endpoints;
  uint32_t retries = 0;
  bool failed = false;
  Status failure;

  void FailLocked(Status status) {
    if (!failed) {
      failed = true;
      failure = std::move(status);
    }
    cv.notify_all();
  }
};

/// One worker connection: framed handshake done, ready for mineshard
/// round trips.
struct WorkerLink {
  std::string endpoint;
  TcpClient client;
};

/// The one endpoint parser: splits "host:port" and validates the port,
/// shared by ParseEndpointList (validation) and ConnectAndHandshake
/// (connection), so the two can never drift.
Status SplitEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port) {
  const std::size_t colon = endpoint.rfind(':');
  Status malformed = Status::InvalidArgument(
      "endpoint must be host:port (port 1..65535), got '" + endpoint + "'");
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    return malformed;
  }
  uint32_t parsed = 0;
  for (std::size_t i = colon + 1; i < endpoint.size(); ++i) {
    const char c = endpoint[i];
    if (c < '0' || c > '9') return malformed;
    parsed = parsed * 10 + static_cast<uint32_t>(c - '0');
    if (parsed > 65535) return malformed;  // also stops overflow
  }
  if (parsed < 1) return malformed;
  *host = endpoint.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return Status::Ok();
}

/// Sends one mineshard request and decodes the shard_result, keeping
/// socket failures (retryable) apart from worker verdicts (fatal).
ShardRoundTrip RoundTripShard(WorkerLink& link, const QueryRequest& base,
                              const PlannedShard& shard,
                              uint64_t expected_hash, uint64_t request_id) {
  ShardRoundTrip out;
  Request request;
  request.id = request_id;
  MineShardRequest payload;
  payload.query = base;
  payload.query.seed_begin = shard.begin;
  payload.query.seed_end = shard.end;
  payload.expected_hash = expected_hash;
  request.payload = std::move(payload);
  Status sent = link.client.SendLine(FormatFramedRequest(request));
  if (!sent.ok()) {
    out.transport_failed = true;
    out.transport_error = sent;
    return out;
  }
  auto line = link.client.ReadLine();
  if (!line.ok()) {
    out.transport_failed = true;
    out.transport_error = line.status();
    return out;
  }
  auto decoded = ParseFramedShardResult(*line);
  if (!decoded.ok()) {
    out.verdict = decoded.status();
    return out;
  }
  out.result = *std::move(decoded);
  return out;
}

Status ConnectAndHandshake(WorkerLink& link, const std::string& endpoint,
                           double timeout_seconds) {
  std::string host;
  uint16_t port = 0;
  KPLEX_RETURN_IF_ERROR(SplitEndpoint(endpoint, &host, &port));
  link.endpoint = endpoint;
  KPLEX_RETURN_IF_ERROR(link.client.Connect(host, port, timeout_seconds));
  // The session starts in text mode; the handshake line is text, the
  // response already framed.
  KPLEX_RETURN_IF_ERROR(link.client.SendLine(
      "hello proto=" + std::to_string(kProtocolVersionSharding) +
      " mode=framed"));
  auto hello = link.client.ReadLine();
  if (!hello.ok()) return hello.status();
  auto version = ParseFramedHelloVersion(*hello);
  if (!version.ok()) return version.status();
  if (*version < kProtocolVersionSharding) {
    return Status::FailedPrecondition(
        "worker " + endpoint + " negotiated protocol v" +
        std::to_string(*version) + " but sharding needs v" +
        std::to_string(kProtocolVersionSharding) +
        " (upgrade the worker)");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::vector<std::string>> ParseEndpointList(
    const std::string& list) {
  std::vector<std::string> endpoints;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string token =
        list.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!token.empty()) {
      std::string host;
      uint16_t port = 0;
      KPLEX_RETURN_IF_ERROR(SplitEndpoint(token, &host, &port));
      endpoints.push_back(token);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (endpoints.empty()) {
    return Status::InvalidArgument("endpoint list is empty");
  }
  return endpoints;
}

Status ValidateCoordinatedQuery(const QueryRequest& query) {
  if (query.algo == QueryAlgo::kFp) {
    return Status::InvalidArgument(
        "the fp baseline does not support seed ranges (pick another algo)");
  }
  if (query.max_results > 0) {
    return Status::InvalidArgument(
        "max-results does not compose with a coordinated mine: each worker "
        "would stop after the cap within its own shard, so the merged total "
        "would depend on the shard split. Coordinated mines are count-exact; "
        "run a single-process mine for a truncated answer");
  }
  if (query.collect_bodies || query.chunk_size > 0) {
    return Status::InvalidArgument(
        "results=stream does not compose with a coordinated mine: shards "
        "return mergeable summaries (count + fingerprint), not plex bodies. "
        "Stream from a single worker instead");
  }
  if (query.HasFilter() || query.top_k > 0) {
    return Status::InvalidArgument(
        "server-side selection (filter/contain/top) does not compose with a "
        "coordinated mine: the merge algebra is exact only over the full "
        "result set of each shard");
  }
  if (query.maximum) {
    return Status::InvalidArgument(
        "mode=maximum does not compose with a coordinated mine: the maximum "
        "search is not seed-range partitionable. Run it against one worker");
  }
  if (query.has_cursor) {
    return Status::InvalidArgument(
        "cursor resume does not compose with a coordinated mine: cursors "
        "describe a sequential single-process enumeration order");
  }
  return Status::Ok();
}

StatusOr<CoordinatedMineResult> CoordinateShardedMine(
    const ShardCoordinatorOptions& options) {
  if (options.shards < 1) {
    return Status::InvalidArgument("--shards must be >= 1");
  }
  if (options.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  KPLEX_RETURN_IF_ERROR(ValidateCoordinatedQuery(options.query));
  if (options.endpoints.empty()) {
    return Status::InvalidArgument("at least one worker endpoint is needed");
  }
  WallTimer timer;
  // One trace id spans the whole coordination: every shard round trip
  // emits under it, so a trace groups cleanly per coordinated mine.
  const uint64_t trace_id = NextTraceId();

  // Connect + handshake every endpoint. Partial availability is fine —
  // the fan-out just has fewer lanes — but zero workers is an error.
  std::vector<std::unique_ptr<WorkerLink>> links;
  Status last_connect_error = Status::Ok();
  for (const std::string& endpoint : options.endpoints) {
    auto link = std::make_unique<WorkerLink>();
    Status connected =
        ConnectAndHandshake(*link, endpoint, options.io_timeout_seconds);
    if (!connected.ok()) {
      // A version refusal is a configuration error worth failing loud
      // on; a plain connect failure tolerates a dead spare.
      if (connected.code() == StatusCode::kFailedPrecondition) {
        return connected;
      }
      last_connect_error = connected;
      continue;
    }
    links.push_back(std::move(link));
  }
  if (links.empty()) {
    return Status::IoError("no worker endpoint is reachable (last error: " +
                           last_connect_error.ToString() + ")");
  }

  // Planning probe: an empty shard returns the admission hash and the
  // seed-space size without enumerating anything. Any reachable worker
  // can answer it.
  QueryRequest probe_query = options.query;
  uint64_t content_hash = 0;
  uint64_t total_seeds = 0;
  // Every remaining lane is probed, not just one: admission must be
  // deterministic (a lagging mismatched worker must not slip through
  // just because faster lanes drained the queue first), and probing is
  // cheap relative to mining. The per-shard hash stamp below stays as
  // defense against a mid-run snapshot swap.
  {
    PlannedShard probe;
    probe.begin = 0;
    probe.end = 0;
    std::string reference_endpoint;
    Status probe_error = Status::Ok();
    for (auto it = links.begin(); it != links.end();) {
      ShardRoundTrip trip = RoundTripShard(**it, probe_query, probe,
                                           /*expected_hash=*/0,
                                           /*request_id=*/1);
      if (trip.transport_failed) {
        probe_error = trip.transport_error;
        it = links.erase(it);  // dead connection; drop the lane
        continue;
      }
      // A decoded failure is the worker's verdict — it would repeat.
      if (!trip.verdict.ok()) return trip.verdict;
      if (content_hash == 0) {
        content_hash = trip.result.content_hash;
        total_seeds = trip.result.total_seeds;
        reference_endpoint = (*it)->endpoint;
      } else if (trip.result.content_hash != content_hash) {
        char expected[24], actual[24];
        std::snprintf(expected, sizeof(expected), "0x%016llx",
                      static_cast<unsigned long long>(content_hash));
        std::snprintf(actual, sizeof(actual), "0x%016llx",
                      static_cast<unsigned long long>(
                          trip.result.content_hash));
        return Status::FailedPrecondition(
            "graph content hash mismatch for '" + options.query.graph +
            "' between workers: " + reference_endpoint + " has " + expected +
            ", " + (*it)->endpoint + " has " + actual +
            " (mismatched snapshot?)");
      }
      ++it;
    }
    if (links.empty()) {
      return Status::IoError("planning probe failed on every worker (last: " +
                             probe_error.ToString() + ")");
    }
  }

  // Plan W contiguous ranges that exactly partition [0, total_seeds).
  // Empty tail shards (more shards than seeds) are legal and cheap.
  FanOut state;
  for (uint32_t i = 0; i < options.shards; ++i) {
    PlannedShard shard;
    shard.index = i;
    shard.begin = static_cast<uint32_t>(total_seeds * i / options.shards);
    shard.end =
        static_cast<uint32_t>(total_seeds * (i + 1) / options.shards);
    state.queue.push_back(shard);
  }
  state.outstanding = options.shards;
  state.live_workers = static_cast<uint32_t>(links.size());
  for (const auto& link : links) state.live_endpoints.insert(link->endpoint);

  std::vector<ShardOutcome> outcomes(options.shards);
  MergeableResult merged;

  // Aborting the coordination must also unblock lanes parked inside a
  // long recv on an in-flight shard: half-close every connection, which
  // both wakes the lanes (transport failure; state.failed short-
  // circuits them) and cancels the abandoned shards server-side through
  // the sessions' disconnect handling.
  auto shutdown_all_links = [&links] {
    for (auto& link : links) link->client.Shutdown();
  };

  auto worker_main = [&](WorkerLink& link) {
    std::unique_lock<std::mutex> lock(state.mutex);
    for (;;) {
      while (state.queue.empty() && state.outstanding > 0 && !state.failed) {
        state.cv.wait(lock);
      }
      if (state.failed || state.outstanding == 0) break;
      PlannedShard shard = state.queue.front();
      state.queue.pop_front();
      ++shard.attempts;
      lock.unlock();

      ShardAttemptsTotal().Increment();
      WallTimer shard_timer;
      ShardRoundTrip trip = RoundTripShard(link, options.query, shard,
                                           content_hash,
                                           /*request_id=*/shard.index + 2);
      const double shard_seconds = shard_timer.ElapsedSeconds();
      if (!trip.transport_failed && trip.verdict.ok()) {
        // Only completed round trips price the shard histogram; failed
        // ones are counted by their own series. Emitted before re-
        // taking the fan-out lock (span emission does stderr IO).
        RecordSpan(trace_id, "shard", shard_seconds, &ShardSeconds(),
                   {{"shard", std::to_string(shard.index)},
                    {"endpoint", link.endpoint}});
      }

      lock.lock();
      if (state.failed) break;
      if (trip.transport_failed) {
        // The connection died mid-shard; the shard never completed.
        // Retire this lane first — what remains is where a retry could
        // actually go.
        ShardTransportFailuresTotal().Increment();
        --state.live_workers;
        auto self = state.live_endpoints.find(link.endpoint);
        if (self != state.live_endpoints.end()) {
          state.live_endpoints.erase(self);
        }
        const bool other_endpoint_live =
            std::any_of(state.live_endpoints.begin(),
                        state.live_endpoints.end(),
                        [&link](const std::string& endpoint) {
                          return endpoint != link.endpoint;
                        });
        if (!other_endpoint_live) {
          // Every remaining lane (if any) points at the endpoint that
          // just dropped — a retry could only go back to the same dead
          // worker. Fail fast with the full picture instead of burning
          // max_attempts on it.
          state.FailLocked(Status::IoError(
              "worker " + link.endpoint + " dropped mid-shard and no "
              "other endpoint is live; shard " +
              std::to_string(shard.index) + " (seeds " +
              std::to_string(shard.begin) + ":" +
              std::to_string(shard.end) +
              ") cannot be retried elsewhere (transport error: " +
              trip.transport_error.ToString() + ")"));
          shutdown_all_links();
          return;
        }
        if (shard.attempts >= options.max_attempts) {
          state.FailLocked(Status::IoError(
              "shard " + std::to_string(shard.index) + " failed after " +
              std::to_string(shard.attempts) + " attempts (last: " +
              trip.transport_error.ToString() + ")"));
          shutdown_all_links();
          break;
        }
        ++state.retries;
        ShardRetriesTotal().Increment();
        state.queue.push_back(shard);
        state.cv.notify_all();
        return;  // this lane's connection is gone
      }
      if (!trip.verdict.ok()) {
        // A worker verdict (hash mismatch, bad options, failed job):
        // retrying elsewhere would just repeat it.
        ShardVerdictFailuresTotal().Increment();
        state.FailLocked(trip.verdict);
        shutdown_all_links();
        break;
      }
      const ParsedShardResult& result = trip.result;
      if (!result.IsComplete()) {
        // A cut-short shard — cancelled, or kDone-but-truncated by a
        // time limit / result cap — is a partial answer; partial
        // answers never enter a merge.
        std::string how = result.state;
        if (result.timed_out) how += ", time limit hit";
        if (result.stopped_early) how += ", result cap hit";
        if (result.cancelled && result.state == "done") how += ", cancelled";
        state.FailLocked(Status::FailedPrecondition(
            "shard " + std::to_string(shard.index) + " on " + link.endpoint +
            " is not a complete answer (" + how + ")"));
        shutdown_all_links();
        break;
      }
      MergeableResult piece;
      piece.count = result.plexes;
      piece.xor_hash = result.fingerprint_xor;
      piece.max_plex_size = static_cast<std::size_t>(result.max_size);
      merged.Merge(piece);
      ShardOutcome& outcome = outcomes[shard.index];
      outcome.index = shard.index;
      outcome.begin = shard.begin;
      outcome.end = shard.end;
      outcome.endpoint = link.endpoint;
      outcome.attempts = shard.attempts;
      outcome.plexes = result.plexes;
      outcome.fingerprint = result.fingerprint;
      outcome.seconds = result.seconds;
      --state.outstanding;
      if (state.outstanding == 0) state.cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(links.size());
  for (auto& link : links) {
    threads.emplace_back([&worker_main, &link] { worker_main(*link); });
  }
  for (auto& thread : threads) thread.join();
  // Dropping the links closes every connection; workers cancel whatever
  // an aborted coordination left running (session disconnect handling).
  links.clear();

  if (state.failed) return state.failure;

  CoordinatedMineResult result;
  result.num_plexes = merged.count;
  result.max_plex_size = merged.max_plex_size;
  result.fingerprint = merged.fingerprint();
  result.fingerprint_xor = merged.xor_hash;
  result.content_hash = content_hash;
  result.total_seeds = total_seeds;
  result.retries = state.retries;
  result.shards = std::move(outcomes);
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace kplex
