// Structured service protocol v1: the typed Request/Response vocabulary
// of the query service, shared by every front end — the scriptable
// ServiceSession, `kplex_cli serve`, and the TCP transport
// (service/tcp_server.h). The protocol separates three concerns that
// used to live tangled inside ServiceSession::ExecuteLine:
//
//   1. *Messages*: one struct per operation (LoadRequest, MineRequest,
//      ...) with explicit typed fields, wrapped in a std::variant. This
//      is the API a network client or a future sharding coordinator
//      programs against.
//   2. *Codecs*: two interchangeable wire encodings of the same
//      messages, both newline-delimited:
//        - text: the historical human session grammar
//          ("mine web 2 12 threads=8"). ParseTextRequest/
//          FormatTextResponse round-trip it byte-for-byte, so existing
//          scripts and transcripts are unaffected.
//        - framed: one JSON object per line ("JSON lines"), carrying a
//          client correlation id, machine-readable field names, and a
//          structured error shape. Arbitrary strings (spaces in paths)
//          survive framing; the text grammar cannot express them.
//      A session starts in text mode; the `hello` handshake
//      (HelloRequest) negotiates the protocol version and may switch
//      the connection to framed mode.
//   3. *Errors*: every failure is a structured Status (code + message)
//      echoed with the request id — formatted as "error: CODE: msg" on
//      the text wire and as {"ok":false,"code":...} on the framed wire.
//      SanitizeErrorStatus scrubs absolute filesystem paths out of
//      error messages before they reach a client (a service must not
//      leak its host layout through strerror strings).
//
// Version/compat policy: kProtocolVersion bumps when the message
// vocabulary grows (additive — v2 added mineshard/shard_result) and is
// how a client discovers a capability: `hello proto=N` negotiates
// min(N, kProtocolVersion), so a coordinator that needs the sharding
// vocabulary sends proto=2 and refuses a server that negotiates down
// to 1. Message *shapes*, once shipped, never change (breaking changes
// would require a new command name); unknown *fields* in framed
// requests are rejected (typo safety), unknown *commands* report
// INVALID_ARGUMENT — a v1 client can always talk to a v1+ server. See
// docs/SERVE.md for the full message reference and wire examples.

#ifndef KPLEX_SERVICE_PROTOCOL_H_
#define KPLEX_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "obs/metrics.h"
#include "service/dispatcher.h"
#include "service/graph_catalog.h"
#include "service/query_engine.h"
#include "util/status.h"

namespace kplex {

/// Current protocol version (see the compat policy above). v2 added the
/// sharded-mining vocabulary (mineshard / shard_result); v3 added the
/// `metrics` scrape verb; v4 added streamed result bodies
/// (results=stream / result_chunk frames / cursor resume) and the
/// server-side selection options (filter / contain / top / mode); v5
/// added the coordination vocabulary — the planning probe (plan), the
/// split shard round trip (shardsubmit / shardwait / shardstop, which
/// makes work-stealing possible), and the worker-lifecycle verbs a
/// coordinator daemon serves (register / heartbeat / drain / workers);
/// v6 added the durable result-store verbs (store / store evict).
inline constexpr uint32_t kProtocolVersion = 6;

/// First protocol version that speaks mineshard/shard_result; what a
/// shard coordinator requires its workers to negotiate.
inline constexpr uint32_t kProtocolVersionSharding = 2;

/// First protocol version that streams result bodies and understands
/// the selection options; what a streaming client requires its server
/// to negotiate.
inline constexpr uint32_t kProtocolVersionStreaming = 4;

/// First protocol version with the coordination vocabulary (plan /
/// shardsubmit / shardwait / shardstop and the worker-lifecycle verbs);
/// what the v2 coordinator daemon requires its workers to negotiate.
inline constexpr uint32_t kProtocolVersionCoordination = 5;

/// First protocol version with the durable result-store verbs (store /
/// store evict); what a client managing the disk tier requires.
inline constexpr uint32_t kProtocolVersionStore = 6;

/// Wire encoding of a session. Text is the default; framed is opted
/// into through the hello handshake.
enum class WireMode { kText, kFramed };

/// "text" / "framed".
const char* WireModeName(WireMode mode);
StatusOr<WireMode> ParseWireMode(const std::string& name);

// ---------------------------------------------------------------- requests

/// `hello [proto=N] [mode=text|framed]` — protocol handshake. The
/// response carries the negotiated version min(N, kProtocolVersion);
/// when `mode` is present the connection switches encodings for every
/// subsequent message (the hello response itself is already sent in the
/// new mode).
struct HelloRequest {
  uint32_t version = kProtocolVersion;
  std::optional<WireMode> mode;
};

/// `load NAME PATH` — register + materialize a graph file (snapshots
/// auto-detected by magic, else SNAP edge list).
struct LoadRequest {
  std::string name;
  std::string path;
};

/// `dataset NAME KEY` — register + materialize a registry dataset.
struct DatasetRequest {
  std::string name;
  std::string key;
};

/// `snapshot NAME PATH [precompute] [levels=C1,C2,...]` — write NAME as
/// a v2 binary snapshot (levels implies precompute).
struct SnapshotRequest {
  std::string name;
  std::string path;
  bool include_precompute = false;
  std::vector<uint32_t> core_mask_levels;
};

/// `mine NAME K Q [key=value ...]` — synchronous query (submit + wait
/// on the service dispatcher). The embedded QueryRequest's cancel
/// pointer is ignored; cancellation goes through CancelRequest.
struct MineRequest {
  QueryRequest query;
};

/// `submit NAME K Q [key=value ...]` — asynchronous query; the response
/// carries the job id immediately.
struct SubmitRequest {
  QueryRequest query;
};

/// `mineshard NAME K Q [seed-range=B:E] [hash=0xH] [key=value ...]` —
/// one shard of a coordinated enumeration: a synchronous mine
/// restricted to the query's seed range (QueryRequest::seed_begin/
/// seed_end — half-open indices into the canonical seed order of the
/// reduced graph; see docs/SHARDING.md). When `expected_hash` is
/// non-zero the worker first compares it against its own content hash
/// of the named graph and refuses a mismatched snapshot with
/// FAILED_PRECONDITION — the admission check that makes a merged
/// result trustworthy. An empty range ([0:0)) is the coordinator's
/// planning probe: it returns the content hash and the seed-space size
/// without enumerating anything.
struct MineShardRequest {
  QueryRequest query;
  uint64_t expected_hash = 0;  ///< 0 skips the admission check
};

/// `plan NAME K Q [ctcp]` — the coordinator's cost-estimate probe (v5):
/// returns the seed-space size plus, per canonical seed index, the
/// forward degree (neighbors later in degeneracy order — a proxy for
/// the seed's candidate-pool size) and the coreness, both read from the
/// v2 precompute sections when present. No enumeration happens; the
/// probe is cheap even on graphs where a mine runs for minutes. A
/// coordinator turns the arrays into per-seed cost estimates
/// (SeedPlanCost) and cuts the seed space into balanced chunks.
struct PlanRequest {
  std::string graph;
  uint32_t k = 2;
  uint32_t q = 4;
  /// Mirrors QueryRequest::use_ctcp so the probe validates the same
  /// option set a subsequent mineshard will carry. CTCP replaces the
  /// core reduction (different seed order and count), so workers refuse
  /// a ctcp plan with INVALID_ARGUMENT; coordinators fall back to
  /// uniform chunking over an empty-range mineshard probe instead.
  bool use_ctcp = false;
};

/// `shardsubmit NAME K Q [seed-range=B:E] [hash=0xH] [key=value ...]` —
/// asynchronous mineshard (v5): runs the same admission check as
/// MineShardRequest, then submits the shard and responds immediately
/// with the job id and verified content hash instead of blocking until
/// the shard finishes. The split round trip is what makes work-stealing
/// possible: while the submitting connection waits in `shardwait`, a
/// second connection can `shardstop` the job to make it yield.
struct ShardSubmitRequest {
  QueryRequest query;
  uint64_t expected_hash = 0;  ///< 0 skips the admission check
};

/// `shardwait ID` — block until shard job ID is terminal, then respond
/// with its shard_result frame (same shape a synchronous mineshard
/// produces, including the covered seed range of a yielded run).
struct ShardWaitRequest {
  uint64_t job = 0;
};

/// `shardstop ID` — request a cooperative yield of shard job ID
/// (ServiceDispatcher::Yield): a running sequential enumeration stops
/// cleanly at the next seed boundary and its shard_result reports the
/// covered prefix, letting a coordinator re-issue the remainder to an
/// idle worker. Engines without seed-boundary yield support (parallel,
/// fp) ignore the flag and finish whole — the steal degrades to a
/// no-op, never to a wrong answer.
struct ShardStopRequest {
  uint64_t job = 0;
};

/// `register HOST:PORT` — a worker joins a coordinator daemon's pool
/// (v5, coordinator-side verb): the daemon connects back to the
/// advertised endpoint, content-hash gates admission per job, and
/// starts scheduling chunks onto the worker. Responds with the assigned
/// worker id.
struct RegisterRequest {
  std::string endpoint;  ///< "host:port" the worker serves on
};

/// `heartbeat ID` — refreshes worker ID's liveness on a coordinator; a
/// dead-marked worker that heartbeats again is revived for future jobs.
struct HeartbeatRequest {
  uint64_t worker = 0;
};

/// `drain ID` — asks the coordinator to stop scheduling new chunks onto
/// worker ID; in-flight chunks finish (or are re-queued on failure) and
/// the worker leaves the pool cleanly.
struct DrainRequest {
  uint64_t worker = 0;
};

/// `workers` — the coordinator's worker-pool table.
struct WorkersRequest {};

/// `cancel ID` — request cancellation of a queued/running job.
struct CancelRequest {
  uint64_t job = 0;
};

/// `jobs` — status of every retained job.
struct JobsRequest {};

/// `wait [ID]` — block until job ID (absent: every job) is terminal.
struct WaitRequest {
  std::optional<uint64_t> job;
};

/// `stats` — catalog + result-cache + dispatcher tables.
struct StatsRequest {};

/// `metrics [format=table|prom]` — scrape the process-wide
/// MetricsRegistry (obs/metrics.h). `format` chooses the text-wire
/// rendering: "table" (default) is one `counter|gauge|histogram` line
/// per series, "prom" is the Prometheus text exposition format. The
/// framed wire always carries the full structured snapshot and ignores
/// `format`. v3 verb.
struct MetricsRequest {
  std::string format;  ///< "", "table", or "prom"
};

/// `evict NAME` — drop the resident copy (reloads on next use).
struct EvictRequest {
  std::string name;
};

/// `store [evict]` (v6) — the durable result-store tier. Bare `store`
/// reports occupancy and counters; `store evict` deletes every entry
/// (the files, crash-safely — not just the in-memory index). Both fail
/// with FAILED_PRECONDITION when the server runs without `--store`.
struct StoreRequest {
  bool evict = false;
};

/// `help` — command summary.
struct HelpRequest {};

/// `quit` / `exit` — end the session (the transport closes after the
/// ByeResponse).
struct QuitRequest {};

using RequestPayload =
    std::variant<HelloRequest, LoadRequest, DatasetRequest, SnapshotRequest,
                 MineRequest, SubmitRequest, MineShardRequest, PlanRequest,
                 ShardSubmitRequest, ShardWaitRequest, ShardStopRequest,
                 RegisterRequest, HeartbeatRequest, DrainRequest,
                 WorkersRequest, CancelRequest, JobsRequest, WaitRequest,
                 StatsRequest, MetricsRequest, EvictRequest, StoreRequest,
                 HelpRequest, QuitRequest>;

struct Request {
  /// Client-chosen correlation id, echoed in the response. Framed mode
  /// only; always 0 on the text wire.
  uint64_t id = 0;
  RequestPayload payload;
};

// --------------------------------------------------------------- responses

struct HelloResponse {
  /// min(client version, kProtocolVersion).
  uint32_t version = kProtocolVersion;
  /// Set when the handshake switches the wire encoding (the adapter
  /// applies it); absent when hello carried no mode.
  std::optional<WireMode> mode;
};

struct LoadResponse {
  std::string name;
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  double load_seconds = 0;
  /// Registry key for dataset loads; empty for file loads.
  std::string dataset_key;
};

struct SnapshotResponse {
  std::string name;
  std::string path;
  bool with_precompute = false;
};

/// Terminal outcome of a synchronous mine (the job ran to done,
/// cancelled, or failed state before the response was produced).
struct MineResponse {
  JobInfo job;
};

struct SubmitResponse {
  uint64_t job = 0;
  QueryRequest query;  ///< as submitted (echoed in the confirmation)
};

/// Terminal outcome of one shard (MineShardRequest). The job's request
/// echoes the seed range; its result carries the mergeable pieces — the
/// plex count, the raw XOR fingerprint half (fingerprint_xor), and the
/// seed-space size (total_seeds) — plus the content hash the worker
/// verified, so a coordinator can fold ShardResults into one verified
/// total (core/sink.h MergeableResult).
struct ShardResultResponse {
  JobInfo job;
  uint64_t content_hash = 0;  ///< the worker's hash of the mined graph
};

/// Outcome of the `plan` probe (v5): the per-seed cost inputs in
/// canonical seed order, plus the content hash that anchors every
/// subsequent shardsubmit admission check.
struct PlanResponse {
  std::string graph;
  uint64_t total_seeds = 0;
  uint64_t content_hash = 0;
  uint32_t degeneracy = 0;
  /// Per canonical seed index: forward degree in degeneracy order.
  std::vector<uint32_t> degrees;
  /// Per canonical seed index: coreness of the seed vertex.
  std::vector<uint32_t> coreness;
  /// True when the ordering came from precompute sections (no peel).
  bool precomputed = false;
  double seconds = 0;
};

/// Acknowledges a shardsubmit: the shard job is queued (admission
/// already passed) and `shardwait job` will deliver its shard_result.
struct ShardSubmitResponse {
  uint64_t job = 0;
  uint64_t content_hash = 0;  ///< the worker's verified graph hash
};

/// Acknowledges a shardstop (the yield flag is set; the job's
/// shard_result delivers the covered prefix).
struct ShardStopResponse {
  uint64_t job = 0;
};

/// Acknowledges register / heartbeat / drain on a coordinator: the
/// worker id plus its pool state after the verb applied.
struct WorkerAckResponse {
  uint64_t worker = 0;
  std::string state;  ///< "idle" / "busy" / "draining" / "dead"
};

/// One row of the coordinator's worker-pool table.
struct WorkerInfo {
  uint64_t id = 0;
  std::string endpoint;
  std::string state;  ///< "idle" / "busy" / "draining" / "dead"
  uint64_t chunks_done = 0;
  uint64_t chunks_failed = 0;
};

struct WorkersResponse {
  std::vector<WorkerInfo> workers;
};

struct CancelResponse {
  uint64_t job = 0;
};

struct JobsResponse {
  std::vector<JobInfo> jobs;  ///< submission order
};

/// Outcome of `wait ID` (terminal snapshot of that job).
struct WaitResponse {
  JobInfo job;
};

/// Outcome of bare `wait`: per-state tallies after the drain, plus the
/// ids of failed jobs so adapters can count each failure exactly once
/// toward a batch exit code.
struct WaitAllResponse {
  ServiceDispatcher::JobCounts counts;
  std::vector<uint64_t> failed_jobs;
};

/// Occupancy + counters of the durable result store (`store` verb and
/// the store row of `stats`). Mirrors ResultStore::Stats without making
/// the protocol depend on the store header.
struct StoreStatusInfo {
  bool enabled = false;  ///< false when the server runs without --store
  uint64_t entries = 0;
  uint64_t bytes = 0;
  uint64_t byte_budget = 0;  ///< 0 = unlimited
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t writes = 0;
  uint64_t evictions = 0;
  uint64_t corrupt_entries = 0;
};

struct StatsResponse {
  std::vector<CatalogEntryInfo> graphs;
  std::size_t resident_bytes = 0;        ///< owned, budget-relevant
  std::size_t mapped_resident_bytes = 0; ///< zero-copy, budget-exempt
  std::size_t memory_budget_bytes = 0;   ///< 0 = unlimited
  QueryEngine::CacheStats cache;
  ServiceDispatcher::JobCounts jobs;
  uint32_t workers = 0;
  StoreStatusInfo store;  ///< disk tier occupancy (v6)
};

/// One MetricsRegistry scrape. `format` echoes the request's choice so
/// the text codec knows which rendering to write.
struct MetricsResponse {
  std::string format;  ///< "", "table", or "prom"
  MetricsSnapshot snapshot;
};

/// One bounded slice of a streamed result body (`results=stream`, v4):
/// up to chunk-size plexes, each a sorted vertex-id list. `seq` numbers
/// the chunks of one response from 0 and `last` marks the final slice;
/// every chunk frame precedes the final mine/verdict frame of the same
/// request id, so a client drains chunks until `last` and then reads
/// the verdict. An empty result still sends one empty last chunk — the
/// body stream is always present when bodies were requested.
struct ResultChunkResponse {
  uint64_t job = 0;
  uint64_t seq = 0;
  bool last = false;
  std::vector<std::vector<VertexId>> plexes;
};

struct EvictResponse {
  std::string name;
};

/// Outcome of the `store` verbs (v6): the tier's status after the verb
/// applied; for `store evict` additionally what was freed.
struct StoreResponse {
  StoreStatusInfo info;
  bool evicted = false;  ///< true for `store evict`
  uint64_t evicted_entries = 0;
  uint64_t evicted_bytes = 0;
};

struct HelpResponse {};

/// Acknowledges QuitRequest; the transport closes after sending it.
struct ByeResponse {};

/// Structured failure: Status code + sanitized message, echoed with the
/// request id like every other response.
struct ErrorResponse {
  Status status;
};

using ResponsePayload =
    std::variant<HelloResponse, LoadResponse, SnapshotResponse, MineResponse,
                 SubmitResponse, ShardResultResponse, PlanResponse,
                 ShardSubmitResponse, ShardStopResponse, WorkerAckResponse,
                 WorkersResponse, ResultChunkResponse, CancelResponse,
                 JobsResponse, WaitResponse, WaitAllResponse, StatsResponse,
                 MetricsResponse, EvictResponse, StoreResponse, HelpResponse,
                 ByeResponse, ErrorResponse>;

struct Response {
  uint64_t request_id = 0;  ///< mirrors Request::id
  ResponsePayload payload;
};

// -------------------------------------------------------------- text codec

/// True for lines the text grammar skips silently (blank / '#' comment).
bool IsBlankOrComment(const std::string& line);

/// Parses one line of the session grammar into a typed request.
/// Returns InvalidArgument with the historical error strings ("usage:
/// ...", "unknown command '...' (try 'help')") on malformed input.
/// `line` must not be blank or a comment (check IsBlankOrComment
/// first).
StatusOr<Request> ParseTextRequest(const std::string& line);

/// Canonical command line for a request — the inverse of
/// ParseTextRequest for every request whose strings contain no
/// whitespace (the text grammar tokenizes; use the framed codec for
/// arbitrary strings). Defaulted options are omitted.
std::string FormatTextRequest(const Request& request);

/// Writes the human text rendering of a response — byte-identical to
/// the historical ServiceSession output (ByeResponse prints nothing).
void FormatTextResponse(const Response& response, std::ostream& out);

// ------------------------------------------------------------ framed codec

/// Parses one JSON-lines frame ({"cmd":"mine","graph":...}). Malformed
/// JSON, wrong field types, and unknown fields all return structured
/// InvalidArgument errors — never a crash. When `error_id` is non-null
/// it receives the frame's correlation id whenever one was readable
/// (even if validation failed afterwards), so error responses can stay
/// correlated; 0 when no id could be extracted.
StatusOr<Request> ParseFramedRequest(const std::string& line,
                                     uint64_t* error_id = nullptr);

/// One-line JSON encoding of a request (no trailing newline).
std::string FormatFramedRequest(const Request& request);

/// One-line JSON encoding of a response (no trailing newline).
std::string FormatFramedResponse(const Response& response);

// ------------------------------------------- framed client-side decode
// The shard coordinator is a protocol *client*: it reads framed
// response lines off worker sockets. These decoders parse the two
// frames it consumes. Error frames ({"ok":false,...}) come back as the
// embedded structured Status (code restored via StatusCodeFromName).

/// Decodes a framed hello response; returns the negotiated version.
StatusOr<uint32_t> ParseFramedHelloVersion(const std::string& line);

/// A decoded shard_result frame — the mergeable summary of one shard.
struct ParsedShardResult {
  uint64_t request_id = 0;
  std::string state;           ///< "done" unless the shard was cut short
  uint64_t plexes = 0;
  uint64_t max_size = 0;
  uint64_t fingerprint = 0;     ///< composite, for per-shard logging
  uint64_t fingerprint_xor = 0; ///< the mergeable XOR half
  uint64_t total_seeds = 0;     ///< seed-space size (coordinator planning)
  uint64_t content_hash = 0;    ///< the worker's graph hash
  double seconds = 0;
  // Truncation flags: a kDone job may still be a *partial* answer (hit
  // the time limit or a result cap). A merge must reject these — the
  // coordinator treats any of them as a hard failure.
  bool timed_out = false;
  bool stopped_early = false;
  bool cancelled = false;
  /// Yield outcome (v5 work-stealing): a yielded shard is a *complete*
  /// answer for [covered_begin, covered_end) only — the coordinator
  /// merges the prefix and re-issues the remainder. Older servers never
  /// set these; the defaults make the shard look whole.
  bool yielded = false;
  uint64_t covered_begin = 0;
  uint64_t covered_end = 0;

  /// True iff this shard is a complete answer for its *requested*
  /// range (a yielded shard is complete only for its covered prefix —
  /// the caller must merge covered_begin/covered_end instead).
  bool IsComplete() const {
    return state == "done" && !timed_out && !stopped_early && !cancelled &&
           !yielded;
  }
};

/// Decodes a framed shard_result response line.
StatusOr<ParsedShardResult> ParseFramedShardResult(const std::string& line);

/// A decoded plan frame (v5) — the coordinator's cost-estimate inputs.
struct ParsedPlan {
  uint64_t request_id = 0;
  uint64_t total_seeds = 0;
  uint64_t content_hash = 0;
  uint64_t degeneracy = 0;
  std::vector<uint32_t> degrees;
  std::vector<uint32_t> coreness;
  bool precomputed = false;
  double seconds = 0;
};

/// Decodes a framed plan response line.
StatusOr<ParsedPlan> ParseFramedPlan(const std::string& line);

/// A decoded shard_submitted frame (v5) — the async shard handle.
struct ParsedShardSubmit {
  uint64_t request_id = 0;
  uint64_t job = 0;
  uint64_t content_hash = 0;
};

/// Decodes a framed shard_submitted response line.
StatusOr<ParsedShardSubmit> ParseFramedShardSubmit(const std::string& line);

/// Decodes a framed shard_stopping ack (v5 `shardstop`); returns the
/// yielded job id, or the worker's structured refusal (e.g.
/// FAILED_PRECONDITION when the shard already finished — benign for a
/// stealer: the victim's result is complete and merges normally).
StatusOr<uint64_t> ParseFramedShardStop(const std::string& line);

/// A decoded worker_ack frame (v5) — register/heartbeat/drain outcome.
struct ParsedWorkerAck {
  uint64_t request_id = 0;
  uint64_t worker = 0;
  std::string state;
};

/// Decodes a framed worker_ack response line.
StatusOr<ParsedWorkerAck> ParseFramedWorkerAck(const std::string& line);

/// The frame's "type" value ("mine", "result_chunk", "error", ...) —
/// how a streaming client decides which decoder to hand a line to.
/// Error frames are NOT surfaced as a type: they come back as their
/// embedded structured Status, like every decoder here.
StatusOr<std::string> PeekFramedResponseType(const std::string& line);

/// A decoded result_chunk frame — one bounded slice of a streamed body.
struct ParsedResultChunk {
  uint64_t request_id = 0;
  uint64_t job = 0;
  uint64_t seq = 0;
  bool last = false;
  std::vector<std::vector<VertexId>> plexes;
};

/// Decodes a framed result_chunk response line.
StatusOr<ParsedResultChunk> ParseFramedResultChunk(const std::string& line);

/// A decoded final mine frame — the verdict a streaming client reads
/// after draining the chunk frames of the same request id.
struct ParsedMineResult {
  uint64_t request_id = 0;
  std::string state;        ///< "done" / "cancelled" / "failed"
  uint64_t plexes = 0;      ///< served count (post-filter / post-top)
  uint64_t max_size = 0;
  /// Number of bodies the server buffered (and streamed, for a
  /// results=stream request) — what the chunk frames should reassemble
  /// to. 0 when the request did not ask for bodies.
  uint64_t bodies = 0;
  uint64_t fingerprint = 0;
  double seconds = 0;
  bool cached = false;
  bool timed_out = false;
  bool stopped_early = false;
  bool cancelled = false;
  /// Resume cursor, present when the run stopped at max-results with
  /// more enumeration left.
  bool has_cursor = false;
  uint32_t cursor_seed = 0;
  uint64_t cursor_ordinal = 0;
};

/// Decodes a framed mine response line.
StatusOr<ParsedMineResult> ParseFramedMineResult(const std::string& line);

// ------------------------------------------------------------ error hygiene

/// Replaces every absolute filesystem path in `message` with its last
/// component ("cannot open '/srv/data/web.txt'" -> "cannot open
/// 'web.txt'"), so service errors never leak the host's directory
/// layout. Relative paths and non-path tokens pass through untouched.
std::string SanitizeErrorMessage(const std::string& message);

/// SanitizeErrorMessage applied to a Status (code preserved).
Status SanitizeErrorStatus(const Status& status);

// ---------------------------------------------------------------- helpers

/// One-line summary of a query ("web k=2 q=12 algo=ours"), shared by
/// submit confirmations, job tables, and result lines. Sharded queries
/// append " seeds=B:E".
std::string DescribeQuery(const QueryRequest& query);

/// Wire verb of a request payload ("mine", "stats", ...). Stable names:
/// they key the per-verb request metrics (kplex_requests_<verb>_total).
const char* RequestVerbName(const RequestPayload& payload);

/// Parses the wire seed-range grammar "B:E" (E may be the literal
/// "end" for the open upper bound) into a half-open SeedRange. Shared
/// by the protocol codecs and the CLI's --seed-range flag.
StatusOr<SeedRange> ParseSeedRangeText(const std::string& value);

/// A parsed resume token (wire grammar "SEED:ORDINAL").
struct ResumeCursor {
  uint32_t seed = 0;
  uint64_t ordinal = 0;
};

/// Parses the cursor grammar "SEED:ORDINAL". Shared by the protocol
/// codecs and the CLI's --cursor flag.
StatusOr<ResumeCursor> ParseCursorText(const std::string& value);

/// Formats a cursor as its wire token "SEED:ORDINAL".
std::string FormatCursorValue(uint32_t seed, uint64_t ordinal);

/// Default result_chunk size when the request left `chunk` unset.
inline constexpr uint32_t kDefaultResultChunkSize = 32;

}  // namespace kplex

#endif  // KPLEX_SERVICE_PROTOCOL_H_
