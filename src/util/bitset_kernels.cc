#include "util/bitset_kernels.h"

#include <cstdlib>
#include <cstring>

namespace kplex {
namespace kernels {

// Defined in the per-ISA TUs (bitset_kernels_avx2.cc / _neon.cc); each
// returns its table when the CPU supports the ISA, nullptr otherwise.
#if defined(__x86_64__) || defined(_M_X64)
const KernelTable* Avx2TableOrNull();
#endif
#if defined(__aarch64__)
const KernelTable* NeonTableOrNull();
#endif

namespace {

// ---- portable reference implementations --------------------------------

std::size_t CountPortable(const uint64_t* a, std::size_t words) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < words; ++i) c += std::popcount(a[i]);
  return c;
}

std::size_t AndCountPortable(const uint64_t* a, const uint64_t* b,
                             std::size_t words) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < words; ++i) c += std::popcount(a[i] & b[i]);
  return c;
}

std::size_t AndCount3Portable(const uint64_t* a, const uint64_t* b,
                              const uint64_t* c, std::size_t words) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < words; ++i) {
    n += std::popcount(a[i] & b[i] & c[i]);
  }
  return n;
}

std::size_t AndNotCountPortable(const uint64_t* a, const uint64_t* b,
                                std::size_t words) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < words; ++i) c += std::popcount(a[i] & ~b[i]);
  return c;
}

void AndIntoPortable(uint64_t* dst, const uint64_t* src, std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) dst[i] &= src[i];
}

void OrIntoPortable(uint64_t* dst, const uint64_t* src, std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) dst[i] |= src[i];
}

void AndNotIntoPortable(uint64_t* dst, const uint64_t* src,
                        std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) dst[i] &= ~src[i];
}

void XorIntoPortable(uint64_t* dst, const uint64_t* src, std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) dst[i] ^= src[i];
}

bool SubsetPortable(const uint64_t* a, const uint64_t* b, std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) {
    if (a[i] & ~b[i]) return false;
  }
  return true;
}

bool IntersectsPortable(const uint64_t* a, const uint64_t* b,
                        std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

constexpr KernelTable kPortableTable = {
    "portable",
    /*level=*/0,
    CountPortable,
    AndCountPortable,
    AndCount3Portable,
    AndNotCountPortable,
    AndIntoPortable,
    OrIntoPortable,
    AndNotIntoPortable,
    XorIntoPortable,
    SubsetPortable,
    IntersectsPortable,
};

bool EnvForcesPortable() {
  const char* env = std::getenv("KPLEX_SIMD");
  if (env == nullptr) return false;
  return std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
         std::strcmp(env, "portable") == 0;
}

const KernelTable* SelectDispatched() {
#if defined(KPLEX_NO_SIMD)
  return &kPortableTable;
#else
  if (EnvForcesPortable()) return &kPortableTable;
#if defined(__x86_64__) || defined(_M_X64)
  if (const KernelTable* avx2 = Avx2TableOrNull()) return avx2;
#endif
#if defined(__aarch64__)
  if (const KernelTable* neon = NeonTableOrNull()) return neon;
#endif
  return &kPortableTable;
#endif
}

}  // namespace

namespace internal {
// Constant-initialized so any pre-main DynamicBitset use is safe; the
// initializer of kDispatchUpgrade below swaps in the dispatched table.
constinit const KernelTable* active = &kPortableTable;
}  // namespace internal

const KernelTable& Portable() { return kPortableTable; }

const KernelTable& Dispatched() {
  static const KernelTable* dispatched = SelectDispatched();
  return *dispatched;
}

namespace {
// Runs during static initialization of this TU; other TUs initializing
// earlier simply see the (bit-identical) portable table.
const bool kDispatchUpgrade = [] {
  internal::active = &Dispatched();
  return true;
}();
}  // namespace

void SetActiveForTest(const KernelTable* table) {
  internal::active = table != nullptr ? table : &Dispatched();
}

const char* DispatchedName() { return Dispatched().name; }

int DispatchedLevel() { return Dispatched().level; }

}  // namespace kernels
}  // namespace kplex
