#include "util/mmap_file.h"

#if defined(__unix__) || defined(__APPLE__)
#define KPLEX_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace kplex {

#if KPLEX_HAVE_MMAP

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

StatusOr<std::shared_ptr<const MappedFile>> MappedFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path +
                           "' for mapping: " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat '" + path +
                           "': " + std::strerror(errno));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("'" + path + "' is not a regular file");
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  unsigned char* data = nullptr;
  if (size > 0) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      ::close(fd);
      return Status::IoError("cannot mmap '" + path +
                             "': " + std::strerror(errno));
    }
    data = static_cast<unsigned char*>(mapped);
  }
  ::close(fd);  // the mapping outlives the descriptor
  return std::shared_ptr<const MappedFile>(new MappedFile(data, size));
}

bool MappedFile::Supported() { return true; }

#else  // !KPLEX_HAVE_MMAP

MappedFile::~MappedFile() = default;

StatusOr<std::shared_ptr<const MappedFile>> MappedFile::Open(
    const std::string& path) {
  (void)path;
  return Status::Unimplemented("mmap is not available on this platform");
}

bool MappedFile::Supported() { return false; }

#endif  // KPLEX_HAVE_MMAP

}  // namespace kplex
