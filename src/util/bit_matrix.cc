#include "util/bit_matrix.h"

#include <cstring>
#include <new>
#include <utility>

namespace kplex {
namespace {

constexpr std::size_t kRowAlignWords = 8;  // 8 * 8 bytes = 64-byte rows

uint64_t* AllocateAligned(std::size_t words) {
  if (words == 0) return nullptr;
  void* p = ::operator new(words * sizeof(uint64_t), std::align_val_t{64});
  std::memset(p, 0, words * sizeof(uint64_t));
  return static_cast<uint64_t*>(p);
}

void FreeAligned(uint64_t* p) {
  if (p != nullptr) ::operator delete(p, std::align_val_t{64});
}

}  // namespace

BitMatrix::BitMatrix(uint32_t rows, uint32_t cols)
    : rows_(rows), cols_(cols) {
  const std::size_t words = (static_cast<std::size_t>(cols) + 63) / 64;
  stride_ = (words + kRowAlignWords - 1) / kRowAlignWords * kRowAlignWords;
  if (rows_ > 0 && stride_ == 0) stride_ = kRowAlignWords;  // 0-col rows
  data_ = AllocateAligned(static_cast<std::size_t>(rows_) * stride_);
}

BitMatrix::~BitMatrix() { FreeAligned(data_); }

BitMatrix::BitMatrix(const BitMatrix& o)
    : rows_(o.rows_), cols_(o.cols_), stride_(o.stride_) {
  const std::size_t words = static_cast<std::size_t>(rows_) * stride_;
  data_ = AllocateAligned(words);
  if (words > 0) std::memcpy(data_, o.data_, words * sizeof(uint64_t));
}

BitMatrix& BitMatrix::operator=(const BitMatrix& o) {
  if (this == &o) return *this;
  BitMatrix copy(o);
  *this = std::move(copy);
  return *this;
}

BitMatrix::BitMatrix(BitMatrix&& o) noexcept
    : rows_(o.rows_), cols_(o.cols_), stride_(o.stride_), data_(o.data_) {
  o.rows_ = 0;
  o.cols_ = 0;
  o.stride_ = 0;
  o.data_ = nullptr;
}

BitMatrix& BitMatrix::operator=(BitMatrix&& o) noexcept {
  if (this == &o) return *this;
  FreeAligned(data_);
  rows_ = o.rows_;
  cols_ = o.cols_;
  stride_ = o.stride_;
  data_ = o.data_;
  o.rows_ = 0;
  o.cols_ = 0;
  o.stride_ = 0;
  o.data_ = nullptr;
  return *this;
}

void BitMatrix::ClearRow(uint32_t r) {
  assert(r < rows_ && "BitMatrix::ClearRow out of range");
  std::memset(data_ + r * stride_, 0, stride_ * sizeof(uint64_t));
}

}  // namespace kplex
