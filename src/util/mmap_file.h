// Read-only memory-mapped file. Used by the snapshot loader to serve
// CSR sections zero-copy: the kernel pages bytes in on demand and may
// reclaim clean pages under pressure, so a mapped graph costs page-cache
// residency rather than private heap. On platforms without mmap support
// Open returns Unimplemented and callers fall back to buffered reads.

#ifndef KPLEX_UTIL_MMAP_FILE_H_
#define KPLEX_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "util/status.h"

namespace kplex {

class MappedFile {
 public:
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// Maps `path` read-only. Returns IoError when the file cannot be
  /// opened or mapped and Unimplemented on platforms without mmap.
  /// A zero-length file yields data() == nullptr, size() == 0.
  static StatusOr<std::shared_ptr<const MappedFile>> Open(
      const std::string& path);

  /// True when this build can mmap at all (compile-time capability).
  static bool Supported();

  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  MappedFile(unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace kplex

#endif  // KPLEX_UTIL_MMAP_FILE_H_
