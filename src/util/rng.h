// Deterministic pseudo-random number generation (SplitMix64 seeding +
// xoshiro256**). All graph generators and property tests draw from this
// so every dataset and every test sweep is reproducible bit-for-bit.

#ifndef KPLEX_UTIL_RNG_H_
#define KPLEX_UTIL_RNG_H_

#include <cstdint>

namespace kplex {

/// SplitMix64 step; used to expand a single seed into xoshiro state.
uint64_t SplitMix64(uint64_t& state);

/// xoshiro256** generator. Not cryptographic; fast and high quality.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit word.
  uint64_t Next();

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
};

}  // namespace kplex

#endif  // KPLEX_UTIL_RNG_H_
