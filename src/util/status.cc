#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace kplex {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kAborted:
      return "ABORTED";
  }
  return "UNKNOWN";
}

StatusCode StatusCodeFromName(const std::string& name) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIoError, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kTimedOut, StatusCode::kUnimplemented,
        StatusCode::kAborted}) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void DieStatusOrValue(const Status& status) {
  std::fprintf(stderr, "StatusOr::value() on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace kplex
