// Minimal command-line flag parsing for the CLI tool: positional
// commands plus "--name value" / "--name=value" options with typed
// accessors. Unknown flags are detectable so the CLI can reject typos.

#ifndef KPLEX_UTIL_FLAGS_H_
#define KPLEX_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace kplex {

class FlagParser {
 public:
  /// Parses argv. Arguments before the first "--flag" are positional.
  static StatusOr<FlagParser> Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  /// String flag with default.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;

  /// Integer flag with default; InvalidArgument on malformed values.
  StatusOr<int64_t> GetInt(const std::string& name,
                           int64_t default_value) const;

  /// Double flag with default; InvalidArgument on malformed values.
  StatusOr<double> GetDouble(const std::string& name,
                             double default_value) const;

  /// Flags present on the command line but not in `known`.
  std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
};

}  // namespace kplex

#endif  // KPLEX_UTIL_FLAGS_H_
