#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace kplex {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<bool> g_log_json{false};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* LevelNameLower(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

const char* Basename(const char* file) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  if (name == "debug") {
    *out = LogLevel::kDebug;
  } else if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "warning" || name == "warn") {
    *out = LogLevel::kWarning;
  } else if (name == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetLogJson(bool enabled) {
  g_log_json.store(enabled, std::memory_order_relaxed);
}

bool GetLogJson() { return g_log_json.load(std::memory_order_relaxed); }

namespace internal {

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

void EmitRawLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", line.c_str());
}

double WallClockSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  const char* base = Basename(file_);
  std::string line;
  if (GetLogJson()) {
    char head[96];
    std::snprintf(head, sizeof(head), "{\"ts\":%.6f,\"level\":\"%s\",",
                  WallClockSeconds(), LevelNameLower(level_));
    line = head;
    line += "\"where\":\"";
    AppendJsonEscaped(&line, base);
    char where_tail[16];
    std::snprintf(where_tail, sizeof(where_tail), ":%d", line_);
    line += where_tail;
    line += "\",\"msg\":\"";
    AppendJsonEscaped(&line, stream_.str());
    line += "\"}";
  } else {
    char head[64];
    std::snprintf(head, sizeof(head), "[%s ", LevelName(level_));
    line = head;
    line += base;
    char tail[16];
    std::snprintf(tail, sizeof(tail), ":%d] ", line_);
    line += tail;
    line += stream_.str();
  }
  EmitRawLine(line);
}

}  // namespace internal
}  // namespace kplex
