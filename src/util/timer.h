// Wall-clock timing helpers used by the parallel timeout mechanism and
// every benchmark table.

#ifndef KPLEX_UTIL_TIMER_H_
#define KPLEX_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace kplex {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Nanosecond tick of the monotonic clock (for cheap deadline checks).
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kplex

#endif  // KPLEX_UTIL_TIMER_H_
