#include "util/bitset.h"

namespace kplex {

std::vector<uint32_t> DynamicBitset::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEach([&](std::size_t i) { out.push_back(static_cast<uint32_t>(i)); });
  return out;
}

uint64_t DynamicBitset::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    uint64_t w = words_[i];
    if (i + 1 == words_.size()) w &= TailMask();
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  h ^= num_bits_;
  h *= 0x100000001b3ULL;
  return h;
}

bool DynamicBitset::operator==(const DynamicBitset& o) const {
  if (num_bits_ != o.num_bits_) return false;
  if (words_.empty()) return true;
  for (std::size_t i = 0; i + 1 < words_.size(); ++i) {
    if (words_[i] != o.words_[i]) return false;
  }
  // Tail-masked compare: a stray slack-bit write cannot flip equality.
  const uint64_t mask = TailMask();
  return (words_.back() & mask) == (o.words_.back() & mask);
}

}  // namespace kplex
