#include "util/bitset.h"

namespace kplex {

std::vector<uint32_t> DynamicBitset::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEach([&](std::size_t i) { out.push_back(static_cast<uint32_t>(i)); });
  return out;
}

uint64_t DynamicBitset::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  h ^= num_bits_;
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace kplex
