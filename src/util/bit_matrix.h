// BitMatrix: a dense 2-D bit array stored as ONE contiguous uint64_t
// buffer with a fixed word stride per row, rows aligned to 64 bytes.
//
// This is the storage layer under LocalGraph's adjacency matrix: the
// branch-and-bound inner loops walk many rows in sequence, and a flat
// buffer keeps them on consecutive cache lines instead of chasing one
// heap pointer per row (the old vector<DynamicBitset> layout). The
// stride is rounded up to 8 words (64 bytes) so every row starts on a
// cache-line/AVX-512-friendly boundary.
//
// Rows present as BitSpan views, so they flow straight into the
// dispatched kernels of util/bitset_kernels.h. Invariant: bits at
// column >= cols() and the padding words between ceil(cols/64) and the
// stride are zero — Set/Reset assert the column range in debug builds.

#ifndef KPLEX_UTIL_BIT_MATRIX_H_
#define KPLEX_UTIL_BIT_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "util/bitset_kernels.h"

namespace kplex {

/// Mutable counterpart of BitSpan; converts to BitSpan for reads.
struct MutableBitSpan {
  uint64_t* words = nullptr;
  std::size_t num_bits = 0;

  operator BitSpan() const { return BitSpan{words, num_bits}; }
  std::size_t num_words() const { return (num_bits + 63) / 64; }

  void Set(std::size_t i) {
    assert(i < num_bits && "MutableBitSpan::Set out of range");
    words[i >> 6] |= (uint64_t{1} << (i & 63));
  }
  void Reset(std::size_t i) {
    assert(i < num_bits && "MutableBitSpan::Reset out of range");
    words[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  bool Test(std::size_t i) const { return (words[i >> 6] >> (i & 63)) & 1; }

  void AndWith(BitSpan o) {
    kernels::Active().and_into(words, o.words, num_words());
  }
  void OrWith(BitSpan o) {
    kernels::Active().or_into(words, o.words, num_words());
  }
  void AndNotWith(BitSpan o) {
    kernels::Active().andnot_into(words, o.words, num_words());
  }
};

class BitMatrix {
 public:
  BitMatrix() = default;
  /// rows x cols, all bits clear.
  BitMatrix(uint32_t rows, uint32_t cols);
  ~BitMatrix();

  BitMatrix(const BitMatrix& o);
  BitMatrix& operator=(const BitMatrix& o);
  BitMatrix(BitMatrix&& o) noexcept;
  BitMatrix& operator=(BitMatrix&& o) noexcept;

  uint32_t rows() const { return rows_; }
  uint32_t cols() const { return cols_; }
  /// Words per row; a multiple of 8 (64-byte row alignment).
  std::size_t word_stride() const { return stride_; }

  BitSpan Row(uint32_t r) const {
    assert(r < rows_ && "BitMatrix::Row out of range");
    return BitSpan{data_ + r * stride_, cols_};
  }
  MutableBitSpan MutableRow(uint32_t r) {
    assert(r < rows_ && "BitMatrix::MutableRow out of range");
    return MutableBitSpan{data_ + r * stride_, cols_};
  }

  bool Test(uint32_t r, uint32_t c) const { return Row(r).Test(c); }
  void Set(uint32_t r, uint32_t c) { MutableRow(r).Set(c); }
  void Reset(uint32_t r, uint32_t c) { MutableRow(r).Reset(c); }

  /// Zeroes every bit of row r (padding words stay zero by invariant).
  void ClearRow(uint32_t r);

  /// Total heap bytes owned by the buffer (memory accounting).
  std::size_t AllocatedBytes() const {
    return static_cast<std::size_t>(rows_) * stride_ * sizeof(uint64_t);
  }

 private:
  uint32_t rows_ = 0;
  uint32_t cols_ = 0;
  std::size_t stride_ = 0;     // words per row, multiple of 8
  uint64_t* data_ = nullptr;   // 64-byte aligned, rows_ * stride_ words
};

}  // namespace kplex

#endif  // KPLEX_UTIL_BIT_MATRIX_H_
