// Word-level bit-algebra kernels and the BitSpan view they operate on.
//
// Every hot operation of the mining engine — intersection popcounts,
// subset tests, masked iteration over adjacency rows — bottoms out in a
// loop over 64-bit words. This header centralizes those loops behind a
// table of function pointers (`KernelTable`) so one process-wide
// dispatch decision, made once at startup, selects between:
//
//   portable  plain word loops (std::popcount); always available, and
//             the reference implementation every variant must match
//             bit-for-bit (tests/bitset_kernels_test.cc),
//   avx2      256-bit lanes with vpshufb nibble-LUT popcounts, compiled
//             into its own TU with -mavx2 and used only when the CPU
//             reports AVX2 support,
//   neon      128-bit lanes via vcntq_u8 on aarch64.
//
// Compiling with -DKPLEX_NO_SIMD (CMake option KPLEX_NO_SIMD) pins the
// dispatch to `portable`, as does the runtime escape hatch
// KPLEX_SIMD=off in the environment. The selected ISA is exported as
// the `kplex_simd_dispatch` gauge (docs/OBSERVABILITY.md).
//
// Preconditions shared by every table entry: operand arrays hold
// exactly `words` 64-bit words, and bits past a span's logical size are
// zero (the trailing-slack invariant DynamicBitset and BitMatrix
// maintain). Callers pass equal word counts; the kernels do not check.

#ifndef KPLEX_UTIL_BITSET_KERNELS_H_
#define KPLEX_UTIL_BITSET_KERNELS_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace kplex {
namespace kernels {

struct KernelTable {
  const char* name;  // "portable", "avx2", "neon"
  int level;         // 0 portable, 1 avx2, 2 neon (kplex_simd_dispatch)

  std::size_t (*count)(const uint64_t* a, std::size_t words);
  std::size_t (*and_count)(const uint64_t* a, const uint64_t* b,
                           std::size_t words);
  std::size_t (*and_count3)(const uint64_t* a, const uint64_t* b,
                            const uint64_t* c, std::size_t words);
  std::size_t (*andnot_count)(const uint64_t* a, const uint64_t* b,
                              std::size_t words);
  void (*and_into)(uint64_t* dst, const uint64_t* src, std::size_t words);
  void (*or_into)(uint64_t* dst, const uint64_t* src, std::size_t words);
  void (*andnot_into)(uint64_t* dst, const uint64_t* src, std::size_t words);
  void (*xor_into)(uint64_t* dst, const uint64_t* src, std::size_t words);
  bool (*subset)(const uint64_t* a, const uint64_t* b,
                 std::size_t words);  // every set bit of a also set in b
  bool (*intersects)(const uint64_t* a, const uint64_t* b,
                     std::size_t words);  // (a & b) != 0
};

/// The reference word-loop table; always available.
const KernelTable& Portable();

/// The best table for this machine: AVX2/NEON when compiled in and
/// supported, otherwise portable. Honors KPLEX_NO_SIMD and KPLEX_SIMD=off.
const KernelTable& Dispatched();

namespace internal {
// Constant-initialized to the portable table so pre-main callers are
// safe; upgraded to Dispatched() by a dynamic initializer in
// bitset_kernels.cc (results are bit-identical either way).
extern const KernelTable* active;
}  // namespace internal

/// The table the process is currently routing through.
inline const KernelTable& Active() { return *internal::active; }

/// Test hook: force a specific table (e.g. &Portable() to pin the
/// baseline path); nullptr restores Dispatched(). Not thread-safe —
/// call only from single-threaded test setup.
void SetActiveForTest(const KernelTable* table);

/// Name / level of the startup dispatch decision (independent of any
/// SetActiveForTest override).
const char* DispatchedName();
int DispatchedLevel();

// ---- find-next / for-each word iteration -------------------------------
//
// Bit-iteration stays header-inline: the ctz-and-clear loop is already
// optimal scalar code and the per-bit callback cannot cross a C
// function-pointer boundary without losing inlining.

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Index of the lowest set bit >= `from` in a `num_bits`-bit span, or
/// kNpos. Requires the trailing-slack invariant.
inline std::size_t FindNextBit(const uint64_t* words, std::size_t num_bits,
                               std::size_t from) {
  if (from >= num_bits) return kNpos;
  const std::size_t num_words = (num_bits + 63) / 64;
  std::size_t wi = from >> 6;
  uint64_t w = words[wi] & (~uint64_t{0} << (from & 63));
  while (true) {
    if (w != 0) return (wi << 6) + std::countr_zero(w);
    if (++wi == num_words) return kNpos;
    w = words[wi];
  }
}

/// Calls fn(i) for every set bit, ascending. Reading a word snapshot per
/// iteration makes clearing the current bit inside fn safe.
template <typename Fn>
inline void ForEachBit(const uint64_t* words, std::size_t num_words,
                       Fn&& fn) {
  for (std::size_t wi = 0; wi < num_words; ++wi) {
    uint64_t w = words[wi];
    while (w != 0) {
      std::size_t bit = std::countr_zero(w);
      fn((wi << 6) + bit);
      w &= w - 1;
    }
  }
}

template <typename Fn>
inline void ForEachAndBit(const uint64_t* a, const uint64_t* b,
                          std::size_t num_words, Fn&& fn) {
  for (std::size_t wi = 0; wi < num_words; ++wi) {
    uint64_t w = a[wi] & b[wi];
    while (w != 0) {
      std::size_t bit = std::countr_zero(w);
      fn((wi << 6) + bit);
      w &= w - 1;
    }
  }
}

template <typename Fn>
inline void ForEachAndNotBit(const uint64_t* a, const uint64_t* b,
                             std::size_t num_words, Fn&& fn) {
  for (std::size_t wi = 0; wi < num_words; ++wi) {
    uint64_t w = a[wi] & ~b[wi];
    while (w != 0) {
      std::size_t bit = std::countr_zero(w);
      fn((wi << 6) + bit);
      w &= w - 1;
    }
  }
}

}  // namespace kernels

// ---- BitSpan -----------------------------------------------------------
//
// Non-owning read view over `num_bits` bits backed by 64-bit words with
// a zeroed tail. BitMatrix rows and DynamicBitsets both present as
// BitSpans, so the same kernels serve the flat adjacency matrix and the
// standalone P/C/X sets.

struct BitSpan {
  const uint64_t* words = nullptr;
  std::size_t num_bits = 0;

  std::size_t size() const { return num_bits; }
  std::size_t num_words() const { return (num_bits + 63) / 64; }

  bool Test(std::size_t i) const { return (words[i >> 6] >> (i & 63)) & 1; }

  std::size_t Count() const {
    return kernels::Active().count(words, num_words());
  }

  std::size_t AndCount(BitSpan o) const {
    return kernels::Active().and_count(words, o.words, num_words());
  }

  std::size_t AndCount3(BitSpan b, BitSpan c) const {
    return kernels::Active().and_count3(words, b.words, c.words, num_words());
  }

  /// popcount(this & o) over the first `word_limit` words only (the
  /// vi_words prefix optimization of the seed-graph layout).
  std::size_t AndCountLimit(BitSpan o, std::size_t word_limit) const {
    const std::size_t nw = num_words();
    return kernels::Active().and_count(words, o.words,
                                       word_limit < nw ? word_limit : nw);
  }

  std::size_t AndNotCount(BitSpan o) const {
    return kernels::Active().andnot_count(words, o.words, num_words());
  }

  bool Intersects(BitSpan o) const {
    return kernels::Active().intersects(words, o.words, num_words());
  }

  bool IsSubsetOf(BitSpan o) const {
    return kernels::Active().subset(words, o.words, num_words());
  }

  bool Any() const {
    const std::size_t nw = num_words();
    for (std::size_t i = 0; i < nw; ++i) {
      if (words[i] != 0) return true;
    }
    return false;
  }
  bool None() const { return !Any(); }

  std::size_t FindFirst() const { return FindNext(0); }
  std::size_t FindNext(std::size_t from) const {
    return kernels::FindNextBit(words, num_bits, from);
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    kernels::ForEachBit(words, num_words(), static_cast<Fn&&>(fn));
  }
  template <typename Fn>
  void ForEachAnd(BitSpan o, Fn&& fn) const {
    kernels::ForEachAndBit(words, o.words, num_words(), static_cast<Fn&&>(fn));
  }
  template <typename Fn>
  void ForEachAndNot(BitSpan o, Fn&& fn) const {
    kernels::ForEachAndNotBit(words, o.words, num_words(),
                              static_cast<Fn&&>(fn));
  }

  /// The set bits as indices (test/debug convenience).
  std::vector<uint32_t> ToVector() const {
    std::vector<uint32_t> out;
    out.reserve(Count());
    ForEach([&](std::size_t i) { out.push_back(static_cast<uint32_t>(i)); });
    return out;
  }
};

}  // namespace kplex

#endif  // KPLEX_UTIL_BITSET_KERNELS_H_
