// DynamicBitset: a fixed-width (set at construction/resize) bitset over
// 64-bit words. It is the workhorse of the mining engine: the P/C/X sets
// of every branch-and-bound node and every adjacency-matrix row of a seed
// subgraph are DynamicBitsets, and the hot operations (intersection
// popcounts, subset tests, masked iteration) are all word-parallel.

#ifndef KPLEX_UTIL_BITSET_H_
#define KPLEX_UTIL_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace kplex {

class DynamicBitset {
 public:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  DynamicBitset() = default;
  /// Creates a bitset of `num_bits` bits, all clear.
  explicit DynamicBitset(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  /// Resizes to `num_bits`, clearing all bits.
  void ResizeClear(std::size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }

  std::size_t size() const { return num_bits_; }
  std::size_t num_words() const { return words_.size(); }

  void Set(std::size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Reset(std::size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  bool Test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Assign(std::size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }

  /// Clears bits [0, n) — used for "ids strictly greater than" masks in
  /// set-enumeration search.
  void ResetBelow(std::size_t n) {
    if (n == 0) return;
    if (n >= num_bits_) {
      ResetAll();
      return;
    }
    std::size_t full_words = n >> 6;
    for (std::size_t i = 0; i < full_words; ++i) words_[i] = 0;
    words_[full_words] &= ~uint64_t{0} << (n & 63);
  }

  /// Sets bits [0, size) and clears the trailing slack of the last word.
  void SetAll() {
    for (auto& w : words_) w = ~uint64_t{0};
    TrimTail();
  }
  void ResetAll() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  std::size_t Count() const {
    std::size_t c = 0;
    for (uint64_t w : words_) c += std::popcount(w);
    return c;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  bool None() const { return !Any(); }

  // In-place set algebra. All operands must have equal size.
  void AndWith(const DynamicBitset& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  }
  void OrWith(const DynamicBitset& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  }
  void AndNotWith(const DynamicBitset& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  }
  void XorWith(const DynamicBitset& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  }

  /// popcount(this & o) without materializing the intersection.
  std::size_t AndCount(const DynamicBitset& o) const {
    std::size_t c = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      c += std::popcount(words_[i] & o.words_[i]);
    }
    return c;
  }

  /// popcount(this & b & c) without materializing intermediates.
  std::size_t AndCount3(const DynamicBitset& b, const DynamicBitset& c) const {
    std::size_t count = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      count += std::popcount(words_[i] & b.words_[i] & c.words_[i]);
    }
    return count;
  }

  /// popcount(this & o) over the first `word_limit` words only. Callers
  /// use this when all set bits of one operand are known to lie in a
  /// prefix of the universe (e.g. the V_i prefix of a seed subgraph).
  std::size_t AndCountLimit(const DynamicBitset& o,
                            std::size_t word_limit) const {
    std::size_t count = 0;
    const std::size_t end = word_limit < words_.size() ? word_limit : words_.size();
    for (std::size_t i = 0; i < end; ++i) {
      count += std::popcount(words_[i] & o.words_[i]);
    }
    return count;
  }

  /// popcount(this & ~o).
  std::size_t AndNotCount(const DynamicBitset& o) const {
    std::size_t c = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      c += std::popcount(words_[i] & ~o.words_[i]);
    }
    return c;
  }

  /// True iff (this & o) has at least one set bit.
  bool Intersects(const DynamicBitset& o) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & o.words_[i]) return true;
    }
    return false;
  }

  /// True iff every set bit of this is also set in o.
  bool IsSubsetOf(const DynamicBitset& o) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & ~o.words_[i]) return false;
    }
    return true;
  }

  /// Index of the lowest set bit, or kNpos if none.
  std::size_t FindFirst() const { return FindNext(0); }

  /// Index of the lowest set bit >= from, or kNpos if none.
  std::size_t FindNext(std::size_t from) const {
    if (from >= num_bits_) return kNpos;
    std::size_t wi = from >> 6;
    uint64_t w = words_[wi] & (~uint64_t{0} << (from & 63));
    while (true) {
      if (w != 0) return (wi << 6) + std::countr_zero(w);
      if (++wi == words_.size()) return kNpos;
      w = words_[wi];
    }
  }

  /// Calls fn(i) for every set bit i in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        std::size_t bit = std::countr_zero(w);
        fn((wi << 6) + bit);
        w &= w - 1;
      }
    }
  }

  /// Calls fn(i) for every set bit of (this & o), ascending.
  template <typename Fn>
  void ForEachAnd(const DynamicBitset& o, Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi] & o.words_[wi];
      while (w != 0) {
        std::size_t bit = std::countr_zero(w);
        fn((wi << 6) + bit);
        w &= w - 1;
      }
    }
  }

  /// Calls fn(i) for every set bit of (this & ~o), ascending.
  template <typename Fn>
  void ForEachAndNot(const DynamicBitset& o, Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi] & ~o.words_[wi];
      while (w != 0) {
        std::size_t bit = std::countr_zero(w);
        fn((wi << 6) + bit);
        w &= w - 1;
      }
    }
  }

  /// The set bits as a vector of indices (test/debug convenience).
  std::vector<uint32_t> ToVector() const;

  /// Order-insensitive 64-bit content hash (FNV-1a over words).
  uint64_t Hash() const;

  bool operator==(const DynamicBitset& o) const {
    return num_bits_ == o.num_bits_ && words_ == o.words_;
  }

 private:
  void TrimTail() {
    std::size_t slack = words_.size() * 64 - num_bits_;
    if (slack > 0 && !words_.empty()) {
      words_.back() &= ~uint64_t{0} >> slack;
    }
  }

  std::size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace kplex

#endif  // KPLEX_UTIL_BITSET_H_
