// DynamicBitset: a fixed-width (set at construction/resize) bitset over
// 64-bit words. It is the workhorse of the mining engine: the P/C/X sets
// of every branch-and-bound node are DynamicBitsets, and the hot
// operations (intersection popcounts, subset tests, masked iteration)
// all route through the SIMD-dispatched word kernels of
// util/bitset_kernels.h — the same kernels that serve the flat
// BitMatrix adjacency rows, so a DynamicBitset composes freely with
// BitSpan operands (adjacency rows convert implicitly).
//
// Invariants and preconditions:
//   * Trailing slack: bits in [num_bits_, words*64) are always zero.
//     Count(), Hash() and operator== additionally mask the tail word so
//     a stray slack write can never make equal sets compare unequal;
//     debug builds assert the index range on every Set/Reset/Test.
//   * Binary operations require operands of equal size (and therefore
//     equal word counts). Debug builds assert this; release builds do
//     not check, and mismatched operands are undefined behavior.

#ifndef KPLEX_UTIL_BITSET_H_
#define KPLEX_UTIL_BITSET_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitset_kernels.h"

namespace kplex {

class DynamicBitset {
 public:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  DynamicBitset() = default;
  /// Creates a bitset of `num_bits` bits, all clear.
  explicit DynamicBitset(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  /// Resizes to `num_bits`, clearing all bits.
  void ResizeClear(std::size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }

  std::size_t size() const { return num_bits_; }
  std::size_t num_words() const { return words_.size(); }

  /// Read-only view; lets a DynamicBitset stand in wherever the kernel
  /// layer expects a BitSpan (and vice versa for binary-op operands).
  BitSpan AsSpan() const { return BitSpan{words_.data(), num_bits_}; }
  operator BitSpan() const { return AsSpan(); }

  void Set(std::size_t i) {
    assert(i < num_bits_ && "DynamicBitset::Set index out of range");
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }
  void Reset(std::size_t i) {
    assert(i < num_bits_ && "DynamicBitset::Reset index out of range");
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  bool Test(std::size_t i) const {
    assert(i < num_bits_ && "DynamicBitset::Test index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Assign(std::size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }

  /// Clears bits [0, n) — used for "ids strictly greater than" masks in
  /// set-enumeration search.
  void ResetBelow(std::size_t n) {
    if (n == 0) return;
    if (n >= num_bits_) {
      ResetAll();
      return;
    }
    std::size_t full_words = n >> 6;
    for (std::size_t i = 0; i < full_words; ++i) words_[i] = 0;
    words_[full_words] &= ~uint64_t{0} << (n & 63);
  }

  /// Sets bits [begin, end), word-parallel.
  void SetRange(std::size_t begin, std::size_t end) {
    assert(end <= num_bits_ && "DynamicBitset::SetRange end out of range");
    if (begin >= end) return;
    const std::size_t bw = begin >> 6;
    const std::size_t ew = (end - 1) >> 6;
    const uint64_t bmask = ~uint64_t{0} << (begin & 63);
    const uint64_t emask = ~uint64_t{0} >> (63 - ((end - 1) & 63));
    if (bw == ew) {
      words_[bw] |= bmask & emask;
      return;
    }
    words_[bw] |= bmask;
    for (std::size_t i = bw + 1; i < ew; ++i) words_[i] = ~uint64_t{0};
    words_[ew] |= emask;
  }

  /// Sets bits [0, size) and clears the trailing slack of the last word.
  void SetAll() {
    for (auto& w : words_) w = ~uint64_t{0};
    TrimTail();
  }
  void ResetAll() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits. Tail-masked: immune to slack-bit corruption.
  std::size_t Count() const {
    if (words_.empty()) return 0;
    std::size_t c =
        kernels::Active().count(words_.data(), words_.size() - 1);
    return c + static_cast<std::size_t>(
                   std::popcount(words_.back() & TailMask()));
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  bool None() const { return !Any(); }

  // In-place set algebra. Precondition: operands have equal size (debug
  // builds assert; see the header comment).
  void AndWith(BitSpan o) {
    kernels::Active().and_into(words_.data(), o.words, SameSizeWords(o));
  }
  void OrWith(BitSpan o) {
    kernels::Active().or_into(words_.data(), o.words, SameSizeWords(o));
  }
  void AndNotWith(BitSpan o) {
    kernels::Active().andnot_into(words_.data(), o.words, SameSizeWords(o));
  }
  void XorWith(BitSpan o) {
    kernels::Active().xor_into(words_.data(), o.words, SameSizeWords(o));
  }

  /// popcount(this & o) without materializing the intersection.
  std::size_t AndCount(BitSpan o) const {
    return kernels::Active().and_count(words_.data(), o.words,
                                       SameSizeWords(o));
  }

  /// popcount(this & b & c) without materializing intermediates.
  std::size_t AndCount3(BitSpan b, BitSpan c) const {
    SameSizeWords(b);
    return kernels::Active().and_count3(words_.data(), b.words, c.words,
                                        SameSizeWords(c));
  }

  /// popcount(this & o) over the first `word_limit` words only. Callers
  /// use this when all set bits of one operand are known to lie in a
  /// prefix of the universe (e.g. the V_i prefix of a seed subgraph).
  std::size_t AndCountLimit(BitSpan o, std::size_t word_limit) const {
    const std::size_t words = SameSizeWords(o);
    return kernels::Active().and_count(
        words_.data(), o.words, word_limit < words ? word_limit : words);
  }

  /// popcount(this & ~o).
  std::size_t AndNotCount(BitSpan o) const {
    return kernels::Active().andnot_count(words_.data(), o.words,
                                          SameSizeWords(o));
  }

  /// True iff (this & o) has at least one set bit.
  bool Intersects(BitSpan o) const {
    return kernels::Active().intersects(words_.data(), o.words,
                                        SameSizeWords(o));
  }

  /// True iff every set bit of this is also set in o.
  bool IsSubsetOf(BitSpan o) const {
    return kernels::Active().subset(words_.data(), o.words,
                                    SameSizeWords(o));
  }

  /// Index of the lowest set bit, or kNpos if none.
  std::size_t FindFirst() const { return FindNext(0); }

  /// Index of the lowest set bit >= from, or kNpos if none.
  std::size_t FindNext(std::size_t from) const {
    return kernels::FindNextBit(words_.data(), num_bits_, from);
  }

  /// Calls fn(i) for every set bit i in ascending order. The word is
  /// snapshotted per iteration, so resetting the current bit inside fn
  /// is safe.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    kernels::ForEachBit(words_.data(), words_.size(),
                        static_cast<Fn&&>(fn));
  }

  /// Calls fn(i) for every set bit of (this & o), ascending.
  template <typename Fn>
  void ForEachAnd(BitSpan o, Fn&& fn) const {
    kernels::ForEachAndBit(words_.data(), o.words, SameSizeWords(o),
                           static_cast<Fn&&>(fn));
  }

  /// Calls fn(i) for every set bit of (this & ~o), ascending.
  template <typename Fn>
  void ForEachAndNot(BitSpan o, Fn&& fn) const {
    kernels::ForEachAndNotBit(words_.data(), o.words, SameSizeWords(o),
                              static_cast<Fn&&>(fn));
  }

  /// The set bits as a vector of indices (test/debug convenience).
  std::vector<uint32_t> ToVector() const;

  /// Order-insensitive 64-bit content hash (FNV-1a over words,
  /// tail-masked).
  uint64_t Hash() const;

  bool operator==(const DynamicBitset& o) const;

 private:
  /// 1-bits at the meaningful positions of the last word.
  uint64_t TailMask() const {
    const std::size_t slack = words_.size() * 64 - num_bits_;
    return ~uint64_t{0} >> slack;  // slack < 64 whenever words_ nonempty
  }

  /// Asserts the equal-size precondition of binary ops (debug builds)
  /// and returns the shared word count.
  std::size_t SameSizeWords(BitSpan o) const {
    assert(o.num_bits == num_bits_ &&
           "DynamicBitset binary op requires equal-size operands");
    (void)o;
    return words_.size();
  }

  void TrimTail() {
    if (!words_.empty()) words_.back() &= TailMask();
  }

  std::size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace kplex

#endif  // KPLEX_UTIL_BITSET_H_
