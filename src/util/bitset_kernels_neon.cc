// NEON variants of the bitset kernels for aarch64 (where Advanced SIMD
// is baseline, so no special compile flags are needed). Popcounts use
// vcntq_u8 byte counts reduced with vaddvq_u8 — a 128-bit vector holds
// at most 128 set bits, so the byte-sum fits in the u8 horizontal add.

#include "util/bitset_kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace kplex {
namespace kernels {
namespace {

inline uint64x2_t Load(const uint64_t* p) { return vld1q_u64(p); }

inline std::size_t Popcount128(uint64x2_t v) {
  return vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v)));
}

std::size_t CountNeon(const uint64_t* a, std::size_t words) {
  std::size_t c = 0;
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) c += Popcount128(Load(a + i));
  for (; i < words; ++i) c += std::popcount(a[i]);
  return c;
}

std::size_t AndCountNeon(const uint64_t* a, const uint64_t* b,
                         std::size_t words) {
  std::size_t c = 0;
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    c += Popcount128(vandq_u64(Load(a + i), Load(b + i)));
  }
  for (; i < words; ++i) c += std::popcount(a[i] & b[i]);
  return c;
}

std::size_t AndCount3Neon(const uint64_t* a, const uint64_t* b,
                          const uint64_t* c, std::size_t words) {
  std::size_t n = 0;
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    n += Popcount128(
        vandq_u64(vandq_u64(Load(a + i), Load(b + i)), Load(c + i)));
  }
  for (; i < words; ++i) n += std::popcount(a[i] & b[i] & c[i]);
  return n;
}

std::size_t AndNotCountNeon(const uint64_t* a, const uint64_t* b,
                            std::size_t words) {
  std::size_t c = 0;
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    // vbic computes a & ~b.
    c += Popcount128(vbicq_u64(Load(a + i), Load(b + i)));
  }
  for (; i < words; ++i) c += std::popcount(a[i] & ~b[i]);
  return c;
}

void AndIntoNeon(uint64_t* dst, const uint64_t* src, std::size_t words) {
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    vst1q_u64(dst + i, vandq_u64(Load(dst + i), Load(src + i)));
  }
  for (; i < words; ++i) dst[i] &= src[i];
}

void OrIntoNeon(uint64_t* dst, const uint64_t* src, std::size_t words) {
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(Load(dst + i), Load(src + i)));
  }
  for (; i < words; ++i) dst[i] |= src[i];
}

void AndNotIntoNeon(uint64_t* dst, const uint64_t* src, std::size_t words) {
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    vst1q_u64(dst + i, vbicq_u64(Load(dst + i), Load(src + i)));
  }
  for (; i < words; ++i) dst[i] &= ~src[i];
}

void XorIntoNeon(uint64_t* dst, const uint64_t* src, std::size_t words) {
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    vst1q_u64(dst + i, veorq_u64(Load(dst + i), Load(src + i)));
  }
  for (; i < words; ++i) dst[i] ^= src[i];
}

bool SubsetNeon(const uint64_t* a, const uint64_t* b, std::size_t words) {
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    const uint64x2_t diff = vbicq_u64(Load(a + i), Load(b + i));
    if (vmaxvq_u32(vreinterpretq_u32_u64(diff)) != 0) return false;
  }
  for (; i < words; ++i) {
    if (a[i] & ~b[i]) return false;
  }
  return true;
}

bool IntersectsNeon(const uint64_t* a, const uint64_t* b, std::size_t words) {
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    const uint64x2_t both = vandq_u64(Load(a + i), Load(b + i));
    if (vmaxvq_u32(vreinterpretq_u32_u64(both)) != 0) return true;
  }
  for (; i < words; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

constexpr KernelTable kNeonTable = {
    "neon",
    /*level=*/2,
    CountNeon,
    AndCountNeon,
    AndCount3Neon,
    AndNotCountNeon,
    AndIntoNeon,
    OrIntoNeon,
    AndNotIntoNeon,
    XorIntoNeon,
    SubsetNeon,
    IntersectsNeon,
};

}  // namespace

const KernelTable* NeonTableOrNull() { return &kNeonTable; }

}  // namespace kernels
}  // namespace kplex

#endif  // __aarch64__
