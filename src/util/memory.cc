#include "util/memory.h"

#include <sys/resource.h>

#include <cstdio>
#include <cstring>

namespace kplex {
namespace {

int64_t ReadStatusField(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  int64_t value = 0;
  const std::size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      long long v = 0;
      if (std::sscanf(line + field_len, " %lld", &v) == 1) value = v;
      break;
    }
  }
  std::fclose(f);
  return value;
}

}  // namespace

int64_t PeakRssKib() {
  // Prefer VmHWM; not all kernels expose it, so fall back to getrusage
  // (ru_maxrss is reported in KiB on Linux).
  int64_t vm_hwm = ReadStatusField("VmHWM:");
  if (vm_hwm > 0) return vm_hwm;
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
  return 0;
}

int64_t CurrentRssKib() { return ReadStatusField("VmRSS:"); }

}  // namespace kplex
