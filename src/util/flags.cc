#include "util/flags.h"

#include <cerrno>
#include <cstdlib>

namespace kplex {

StatusOr<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  FlagParser parser;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      parser.positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      parser.flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" when a value follows; bare "--name" is boolean true.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      parser.flags_[body] = argv[++i];
    } else {
      parser.flags_[body] = "true";
    }
  }
  return parser;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

StatusOr<int64_t> FlagParser::GetInt(const std::string& name,
                                     int64_t default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " expects an integer, got '" +
                                   it->second + "'");
  }
  return static_cast<int64_t>(v);
}

StatusOr<double> FlagParser::GetDouble(const std::string& name,
                                       double default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " expects a number, got '" +
                                   it->second + "'");
  }
  return v;
}

std::vector<std::string> FlagParser::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const auto& k : known) {
      if (k == name) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace kplex
