// Minimal Status / StatusOr error-handling vocabulary (Google/Arrow style).
// The mining hot paths never allocate or throw; fallible boundary work
// (file I/O, argument validation) reports through Status instead.

#ifndef KPLEX_UTIL_STATUS_H_
#define KPLEX_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace kplex {

/// Error category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kTimedOut = 7,
  kUnimplemented = 8,
  kAborted = 9,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName: "NOT_FOUND" -> kNotFound. Unrecognized
/// names map to kInternal (a wire client decoding an error frame from a
/// newer server still surfaces *an* error rather than dropping it).
StatusCode StatusCodeFromName(const std::string& name);

/// Result of a fallible operation: a code plus an optional message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of T or an error Status. Accessing the value of a
/// non-OK StatusOr aborts (programming error), mirroring absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit by design
      : status_(std::move(status)) {}
  StatusOr(T value)  // NOLINT: implicit by design
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return value_;
  }
  T& value() & {
    CheckOk();
    return value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const;

  Status status_;
  T value_{};
};

namespace internal {
[[noreturn]] void DieStatusOrValue(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::CheckOk() const {
  if (!status_.ok()) internal::DieStatusOrValue(status_);
}

/// Propagates a non-OK Status from an expression to the caller.
#define KPLEX_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::kplex::Status _kplex_status = (expr);          \
    if (!_kplex_status.ok()) return _kplex_status;   \
  } while (false)

}  // namespace kplex

#endif  // KPLEX_UTIL_STATUS_H_
