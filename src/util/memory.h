// Process memory probes (Linux /proc based). Table 7 of the paper reports
// peak memory per algorithm; the bench harness forks a child per run and
// reads the child's VmHWM through these helpers.

#ifndef KPLEX_UTIL_MEMORY_H_
#define KPLEX_UTIL_MEMORY_H_

#include <cstdint>

namespace kplex {

/// Peak resident set size of this process in KiB (VmHWM), or 0 if
/// unavailable.
int64_t PeakRssKib();

/// Current resident set size of this process in KiB (VmRSS), or 0 if
/// unavailable.
int64_t CurrentRssKib();

}  // namespace kplex

#endif  // KPLEX_UTIL_MEMORY_H_
