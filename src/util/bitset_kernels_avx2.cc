// AVX2 variants of the bitset kernels. This TU is the only one compiled
// with -mavx2 (+ -mpopcnt); nothing here runs unless the runtime CPU
// check in Avx2TableOrNull() passes, so the rest of the binary stays
// baseline-ISA clean. Popcounts use the vpshufb nibble-LUT + vpsadbw
// reduction; loads are unaligned (DynamicBitset words are only 8-byte
// aligned — BitMatrix rows are 64-byte aligned but share these entry
// points).

#include "util/bitset_kernels.h"

#if defined(__x86_64__) || defined(_M_X64)
#if !defined(__AVX2__)

// Compiled without -mavx2 (unexpected on the supported toolchains):
// degrade to "no AVX2 table" so dispatch falls back to portable.
namespace kplex {
namespace kernels {
const KernelTable* Avx2TableOrNull() { return nullptr; }
}  // namespace kernels
}  // namespace kplex

#else

#include <immintrin.h>

namespace kplex {
namespace kernels {
namespace {

inline __m256i Popcount256(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  // Four lane-wise u64 sums of the 32 byte counts.
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

inline std::size_t HorizontalSum(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::size_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::size_t>(_mm_extract_epi64(sum, 1));
}

inline __m256i Load(const uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void Store(uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

std::size_t CountAvx2(const uint64_t* a, std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    acc = _mm256_add_epi64(acc, Popcount256(Load(a + i)));
  }
  std::size_t c = HorizontalSum(acc);
  for (; i < words; ++i) c += static_cast<std::size_t>(_popcnt64(a[i]));
  return c;
}

std::size_t AndCountAvx2(const uint64_t* a, const uint64_t* b,
                         std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    acc = _mm256_add_epi64(
        acc, Popcount256(_mm256_and_si256(Load(a + i), Load(b + i))));
  }
  std::size_t c = HorizontalSum(acc);
  for (; i < words; ++i) {
    c += static_cast<std::size_t>(_popcnt64(a[i] & b[i]));
  }
  return c;
}

std::size_t AndCount3Avx2(const uint64_t* a, const uint64_t* b,
                          const uint64_t* c, std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_and_si256(Load(a + i), Load(b + i)), Load(c + i));
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  std::size_t n = HorizontalSum(acc);
  for (; i < words; ++i) {
    n += static_cast<std::size_t>(_popcnt64(a[i] & b[i] & c[i]));
  }
  return n;
}

std::size_t AndNotCountAvx2(const uint64_t* a, const uint64_t* b,
                            std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    // vpandn computes ~x & y, so pass b first.
    acc = _mm256_add_epi64(
        acc, Popcount256(_mm256_andnot_si256(Load(b + i), Load(a + i))));
  }
  std::size_t c = HorizontalSum(acc);
  for (; i < words; ++i) {
    c += static_cast<std::size_t>(_popcnt64(a[i] & ~b[i]));
  }
  return c;
}

void AndIntoAvx2(uint64_t* dst, const uint64_t* src, std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    Store(dst + i, _mm256_and_si256(Load(dst + i), Load(src + i)));
  }
  for (; i < words; ++i) dst[i] &= src[i];
}

void OrIntoAvx2(uint64_t* dst, const uint64_t* src, std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    Store(dst + i, _mm256_or_si256(Load(dst + i), Load(src + i)));
  }
  for (; i < words; ++i) dst[i] |= src[i];
}

void AndNotIntoAvx2(uint64_t* dst, const uint64_t* src, std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    Store(dst + i, _mm256_andnot_si256(Load(src + i), Load(dst + i)));
  }
  for (; i < words; ++i) dst[i] &= ~src[i];
}

void XorIntoAvx2(uint64_t* dst, const uint64_t* src, std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    Store(dst + i, _mm256_xor_si256(Load(dst + i), Load(src + i)));
  }
  for (; i < words; ++i) dst[i] ^= src[i];
}

bool SubsetAvx2(const uint64_t* a, const uint64_t* b, std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    // vptest CF: set iff (~b & a) == 0, i.e. a ⊆ b over these lanes.
    if (!_mm256_testc_si256(Load(b + i), Load(a + i))) return false;
  }
  for (; i < words; ++i) {
    if (a[i] & ~b[i]) return false;
  }
  return true;
}

bool IntersectsAvx2(const uint64_t* a, const uint64_t* b, std::size_t words) {
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    // vptest ZF: set iff (a & b) == 0 over these lanes.
    if (!_mm256_testz_si256(Load(a + i), Load(b + i))) return true;
  }
  for (; i < words; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

constexpr KernelTable kAvx2Table = {
    "avx2",
    /*level=*/1,
    CountAvx2,
    AndCountAvx2,
    AndCount3Avx2,
    AndNotCountAvx2,
    AndIntoAvx2,
    OrIntoAvx2,
    AndNotIntoAvx2,
    XorIntoAvx2,
    SubsetAvx2,
    IntersectsAvx2,
};

}  // namespace

const KernelTable* Avx2TableOrNull() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Table : nullptr;
}

}  // namespace kernels
}  // namespace kplex

#endif  // __AVX2__
#endif  // x86-64
