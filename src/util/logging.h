// Tiny leveled logger to stderr. Benchmarks print their tables to stdout;
// everything diagnostic goes through here so output stays parseable.
//
// Two output shapes, switched at runtime:
//   plain (default):  [INFO file.cc:42] message
//   JSON  (--log-json): {"ts":...,"level":"info","where":"file.cc:42",
//                        "msg":"message"}
// JSON mode emits exactly one object per line so serve logs and trace
// spans (src/obs/trace.h) interleave parseably on the same stream.

#ifndef KPLEX_UTIL_LOGGING_H_
#define KPLEX_UTIL_LOGGING_H_

#include <sstream>
#include <string>
#include <string_view>

namespace kplex {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" / "error" (also accepts "warn").
/// Returns false and leaves `out` untouched on an unknown name.
bool ParseLogLevel(const std::string& name, LogLevel* out);

/// Switches between the plain prefix format and one-JSON-object-per-line
/// output (default off).
void SetLogJson(bool enabled);
bool GetLogJson();

namespace internal {

/// Appends `text` to `out` with JSON string escaping (quotes, backslash,
/// control characters). Shared by the JSON log format and trace spans.
void AppendJsonEscaped(std::string* out, std::string_view text);

/// Writes one already-formatted line to stderr under the log mutex so it
/// cannot interleave with a concurrent log message. Used by trace-span
/// emission; the line must not contain '\n'.
void EmitRawLine(const std::string& line);

/// Seconds since the Unix epoch, as used by the JSON "ts" field.
double WallClockSeconds();

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace kplex

#define KPLEX_LOG(level)                                               \
  ::kplex::internal::LogMessage(::kplex::LogLevel::k##level, __FILE__, \
                                __LINE__)                              \
      .stream()

#endif  // KPLEX_UTIL_LOGGING_H_
