// Tiny leveled logger to stderr. Benchmarks print their tables to stdout;
// everything diagnostic goes through here so output stays parseable.

#ifndef KPLEX_UTIL_LOGGING_H_
#define KPLEX_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace kplex {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace kplex

#define KPLEX_LOG(level)                                               \
  ::kplex::internal::LogMessage(::kplex::LogLevel::k##level, __FILE__, \
                                __LINE__)                              \
      .stream()

#endif  // KPLEX_UTIL_LOGGING_H_
