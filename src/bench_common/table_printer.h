// Plain-text aligned tables for the benchmark binaries; each bench
// prints rows shaped like the corresponding table/figure of the paper.

#ifndef KPLEX_BENCH_COMMON_TABLE_PRINTER_H_
#define KPLEX_BENCH_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace kplex {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Writes an aligned table with a header separator.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1.234" style seconds with sensible precision.
std::string FormatSeconds(double seconds);
/// Decimal with fixed digits.
std::string FormatDouble(double value, int digits);
/// Plain integer.
std::string FormatCount(uint64_t value);

}  // namespace kplex

#endif  // KPLEX_BENCH_COMMON_TABLE_PRINTER_H_
