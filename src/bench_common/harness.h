// Shared machinery for the bench binaries: the registry of named
// algorithm variants (matching the labels of the paper's tables), timed
// execution, and fork-isolated peak-RSS measurement for the memory table.

#ifndef KPLEX_BENCH_COMMON_HARNESS_H_
#define KPLEX_BENCH_COMMON_HARNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "core/enumerator.h"
#include "core/options.h"
#include "core/sink.h"
#include "graph/graph.h"

namespace kplex {

/// A named algorithm: given a graph and a sink, run it to completion.
using AlgoFn =
    std::function<StatusOr<EnumResult>(const Graph&, ResultSink&)>;

/// Returns the sequential variant named as in the paper's tables:
/// "FP", "ListPlex", "Ours_P", "Ours", "Basic", "Basic+R1", "Basic+R2",
/// "Ours\\ub", "Ours\\ub+fp". Aborts on unknown names.
AlgoFn MakeSequentialAlgo(const std::string& name, uint32_t k, uint32_t q);

/// Parallel variants of Table 4: "FP-par" and "ListPlex-par" run the
/// corresponding search without timeout decomposition; "Ours-par" uses
/// the timeout (tau_ms). All use `threads` workers.
AlgoFn MakeParallelAlgo(const std::string& name, uint32_t k, uint32_t q,
                        uint32_t threads, double tau_ms);

struct RunOutcome {
  bool ok = false;
  std::string error;
  uint64_t num_plexes = 0;
  double seconds = 0.0;
  uint64_t fingerprint = 0;  ///< order-independent result-set hash
};

/// Runs `algo` with a HashingSink and reports timing + fingerprint.
RunOutcome TimeAlgo(const Graph& graph, const AlgoFn& algo);

/// Forks a child, runs `fn` there, and returns the child's peak RSS in
/// KiB (or a negative value on failure). Isolation ensures one
/// algorithm's allocations don't inflate another's measurement.
int64_t MeasurePeakRssKib(const std::function<void()>& fn);

}  // namespace kplex

#endif  // KPLEX_BENCH_COMMON_HARNESS_H_
