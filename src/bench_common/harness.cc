#include "bench_common/harness.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "baselines/fp.h"
#include "baselines/listplex.h"
#include "parallel/parallel_enumerator.h"
#include "util/memory.h"

namespace kplex {

AlgoFn MakeSequentialAlgo(const std::string& name, uint32_t k, uint32_t q) {
  if (name == "FP") {
    return [k, q](const Graph& g, ResultSink& sink) {
      return FpEnumerate(g, k, q, sink);
    };
  }
  if (name == "ListPlex") {
    return [k, q](const Graph& g, ResultSink& sink) {
      return ListPlexEnumerate(g, k, q, sink);
    };
  }
  EnumOptions options;
  if (name == "Ours") {
    options = EnumOptions::Ours(k, q);
  } else if (name == "Ours_P") {
    options = EnumOptions::OursP(k, q);
  } else if (name == "Basic") {
    options = EnumOptions::Basic(k, q);
  } else if (name == "Basic+R1") {
    options = EnumOptions::Basic(k, q);
    options.use_subtask_bound_r1 = true;
  } else if (name == "Basic+R2") {
    options = EnumOptions::Basic(k, q);
    options.use_pair_pruning_r2 = true;
  } else if (name == "Ours\\ub") {
    options = EnumOptions::OursNoUb(k, q);
  } else if (name == "Ours\\ub+fp") {
    options = EnumOptions::OursFpUb(k, q);
  } else {
    std::fprintf(stderr, "unknown algorithm variant '%s'\n", name.c_str());
    std::abort();
  }
  return [options](const Graph& g, ResultSink& sink) {
    return EnumerateMaximalKPlexes(g, options, sink);
  };
}

AlgoFn MakeParallelAlgo(const std::string& name, uint32_t k, uint32_t q,
                        uint32_t threads, double tau_ms) {
  ParallelOptions parallel;
  parallel.num_threads = threads;
  EnumOptions options;
  if (name == "Ours-par") {
    options = EnumOptions::Ours(k, q);
    parallel.timeout_ms = tau_ms;
  } else if (name == "ListPlex-par") {
    options = ListPlexOptions(k, q);
    parallel.timeout_ms = 0.0;  // no straggler elimination
  } else if (name == "FP-par") {
    // FP's parallel implementation runs whole-seed tasks; approximated
    // here by the engine's FP-style options without sub-task timeout.
    options = EnumOptions::Ours(k, q);
    options.upper_bound = UpperBoundMode::kFpSorted;
    options.pivot_saturation_tiebreak = false;
    options.use_subtask_bound_r1 = false;
    options.use_pair_pruning_r2 = false;
    parallel.timeout_ms = 0.0;
  } else {
    std::fprintf(stderr, "unknown parallel variant '%s'\n", name.c_str());
    std::abort();
  }
  return [options, parallel](const Graph& g, ResultSink& sink) {
    return ParallelEnumerateMaximalKPlexes(g, options, parallel, sink);
  };
}

RunOutcome TimeAlgo(const Graph& graph, const AlgoFn& algo) {
  RunOutcome outcome;
  HashingSink sink;
  auto result = algo(graph, sink);
  if (!result.ok()) {
    outcome.error = result.status().ToString();
    return outcome;
  }
  outcome.ok = true;
  outcome.num_plexes = result->num_plexes;
  outcome.seconds = result->seconds;
  outcome.fingerprint = sink.fingerprint();
  return outcome;
}

int64_t MeasurePeakRssKib(const std::function<void()>& fn) {
  int pipefd[2];
  if (pipe(pipefd) != 0) return -1;
  pid_t pid = fork();
  if (pid < 0) {
    close(pipefd[0]);
    close(pipefd[1]);
    return -1;
  }
  if (pid == 0) {
    // Child: run the workload and report how much the peak RSS *grew*
    // beyond the inherited pre-fork footprint, so the measurement
    // captures the workload's own memory rather than the process
    // baseline. Exit without cleanup.
    close(pipefd[0]);
    const int64_t baseline = PeakRssKib();
    fn();
    int64_t peak = PeakRssKib() - baseline;
    if (peak < 0) peak = 0;
    ssize_t ignored = write(pipefd[1], &peak, sizeof(peak));
    (void)ignored;
    close(pipefd[1]);
    _exit(0);
  }
  close(pipefd[1]);
  int64_t peak = -1;
  ssize_t got = read(pipefd[0], &peak, sizeof(peak));
  close(pipefd[0]);
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  if (got != sizeof(peak)) return -1;
  return peak;
}

}  // namespace kplex
