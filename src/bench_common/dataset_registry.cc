#include "bench_common/dataset_registry.h"

#include <functional>
#include <map>

#include "graph/edge_list_io.h"
#include "graph/generators.h"

namespace kplex {
namespace {

struct Entry {
  DatasetSpec spec;
  std::function<StatusOr<Graph>()> make;
};

// Sizes are scaled to laptop/CI hardware; heavy-tailed degree structure,
// local clustering and D << n (the properties the algorithms exploit)
// match the class of each paper dataset. Seeds are fixed.
const std::vector<Entry>& Entries() {
  static const std::vector<Entry>* entries = new std::vector<Entry>{
      {{"karate", "(bundled real graph)", "real",
        "Zachary karate club, 34 vertices / 78 edges"},
       [] { return LoadEdgeList(std::string(KPLEX_DATA_DIR) + "/karate.txt"); }},
      {{"jazz-syn", "jazz", "small",
        "Barabasi-Albert n=198 attach=14 (dense collaboration net)"},
       [] { return StatusOr<Graph>(GenerateBarabasiAlbert(198, 14, 0xA001)); }},
      {{"lastfm-syn", "lastfm", "small",
        "Barabasi-Albert n=1500 attach=4 (sparse social net)"},
       [] { return StatusOr<Graph>(GenerateBarabasiAlbert(1500, 4, 0xA002)); }},
      {{"as-caida-syn", "as-caida", "small",
        "Barabasi-Albert n=2500 attach=2 (internet AS topology)"},
       [] { return StatusOr<Graph>(GenerateBarabasiAlbert(2500, 2, 0xA003)); }},
      {{"wiki-vote-syn", "wiki-vote", "medium",
        "Barabasi-Albert n=1200 attach=18 (dense voting net)"},
       [] { return StatusOr<Graph>(GenerateBarabasiAlbert(1200, 18, 0xA004)); }},
      {{"soc-epinions-syn", "soc-epinions", "medium",
        "Barabasi-Albert n=3000 attach=10 (trust network)"},
       [] { return StatusOr<Graph>(GenerateBarabasiAlbert(3000, 10, 0xA005)); }},
      {{"soc-slashdot-syn", "soc-slashdot", "medium",
        "RMAT scale=12 edges=50000 a=.48 b=.22 c=.22"},
       [] {
         return StatusOr<Graph>(GenerateRmat(12, 50000, 0.48, 0.22, 0.22, 0xA006));
       }},
      {{"email-euall-syn", "email-euall", "medium",
        "RMAT scale=12 edges=25000 a=.5 b=.21 c=.21 (email net)"},
       [] {
         return StatusOr<Graph>(GenerateRmat(12, 25000, 0.50, 0.21, 0.21, 0xA007));
       }},
      {{"com-dblp-syn", "com-dblp", "medium",
        "120 planted 8-vertex 2-plex communities + noise (co-authorship)"},
       [] {
         PlantedCommunityConfig config;
         config.num_communities = 120;
         config.community_size = 8;
         config.missing_per_vertex = 1;
         config.background_vertices = 600;
         config.noise_probability = 0.002;
         return StatusOr<Graph>(
             GeneratePlantedCommunities(config, 0xA008).graph);
       }},
      {{"amazon0505-syn", "amazon0505", "medium",
        "Watts-Strogatz n=4000 nbrs=8 beta=0.05 (low-degeneracy lattice)"},
       [] {
         return StatusOr<Graph>(GenerateWattsStrogatz(4000, 8, 0.05, 0xA009));
       }},
      {{"soc-pokec-syn", "soc-pokec", "large",
        "Barabasi-Albert n=8000 attach=12 (large social net)"},
       [] { return StatusOr<Graph>(GenerateBarabasiAlbert(8000, 12, 0xA00A)); }},
      {{"as-skitter-syn", "as-skitter", "large",
        "RMAT scale=13 edges=80000 a=.5 b=.21 c=.21 (traceroute net)"},
       [] {
         return StatusOr<Graph>(GenerateRmat(13, 80000, 0.50, 0.21, 0.21, 0xA00B));
       }},
      {{"enwiki-syn", "enwiki-2021", "large",
        "Barabasi-Albert n=6000 attach=20 (dense hyperlink net)"},
       [] { return StatusOr<Graph>(GenerateBarabasiAlbert(6000, 20, 0xA00C)); }},
      {{"arabic-syn", "arabic-2005", "large",
        "200 planted 12-vertex 3-plex communities + noise (web host graph)"},
       [] {
         PlantedCommunityConfig config;
         config.num_communities = 200;
         config.community_size = 12;
         config.missing_per_vertex = 2;
         config.background_vertices = 2000;
         config.noise_probability = 0.001;
         return StatusOr<Graph>(
             GeneratePlantedCommunities(config, 0xA00D).graph);
       }},
      {{"uk-2005-syn", "uk-2005", "large",
        "Watts-Strogatz n=9000 nbrs=12 beta=0.08 (crawl with local clusters)"},
       [] {
         return StatusOr<Graph>(GenerateWattsStrogatz(9000, 12, 0.08, 0xA00E));
       }},
      {{"webbase-syn", "webbase-2001", "large",
        "RMAT scale=14 edges=110000 a=.52 b=.2 c=.2 (sparse skewed crawl)"},
       [] {
         return StatusOr<Graph>(
             GenerateRmat(14, 110000, 0.52, 0.20, 0.20, 0xA00F));
       }},
  };
  return *entries;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>* specs = [] {
    auto* out = new std::vector<DatasetSpec>();
    for (const auto& entry : Entries()) out->push_back(entry.spec);
    return out;
  }();
  return *specs;
}

std::vector<DatasetSpec> DatasetsByCategory(const std::string& category) {
  std::vector<DatasetSpec> out;
  for (const auto& spec : AllDatasets()) {
    if (spec.category == category) out.push_back(spec);
  }
  return out;
}

StatusOr<Graph> LoadDataset(const std::string& name) {
  for (const auto& entry : Entries()) {
    if (entry.spec.name == name) return entry.make();
  }
  return Status::NotFound("unknown dataset '" + name + "'");
}

}  // namespace kplex
