// Named benchmark datasets. Each entry is either the bundled real graph
// (Zachary's karate club) or a deterministic synthetic stand-in for one
// of the paper's SNAP/LAW datasets (see DESIGN.md section 4 for the
// substitution rationale). Generation is seeded, so every run of every
// bench sees bit-identical graphs.

#ifndef KPLEX_BENCH_COMMON_DATASET_REGISTRY_H_
#define KPLEX_BENCH_COMMON_DATASET_REGISTRY_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace kplex {

struct DatasetSpec {
  std::string name;        ///< registry key, e.g. "wiki-vote-syn"
  std::string stands_for;  ///< paper dataset it substitutes, e.g. "wiki-vote"
  std::string category;    ///< "real", "small", "medium", "large"
  std::string recipe;      ///< human-readable generator description
};

/// All registered datasets in presentation order.
const std::vector<DatasetSpec>& AllDatasets();

/// Datasets belonging to one category ("small", "medium", "large", "real").
std::vector<DatasetSpec> DatasetsByCategory(const std::string& category);

/// Loads/generates a dataset by registry key.
StatusOr<Graph> LoadDataset(const std::string& name);

}  // namespace kplex

#endif  // KPLEX_BENCH_COMMON_DATASET_REGISTRY_H_
