#include "bench_common/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace kplex {

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << cell << std::string(widths[i] - std::min(widths[i], cell.size()) + 2, ' ');
    }
    os << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.4f", seconds);
  } else if (seconds < 10) {
    std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", seconds);
  }
  return buf;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatCount(uint64_t value) {
  return std::to_string(value);
}

}  // namespace kplex
