#include "store/result_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "obs/metrics.h"
#include "util/mmap_file.h"
#include "util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace kplex {
namespace {

namespace fs = std::filesystem;

// Instrument handles resolved once (see query_engine.cc for the idiom).
// Store metrics are process-global: every store feeds the same series,
// and the bytes gauge tracks the store mutated most recently (serve
// processes run exactly one).
Counter& StoreHitsTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_store_hits_total");
  return counter;
}
Counter& StoreMissesTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_store_misses_total");
  return counter;
}
Counter& StoreWritesTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_store_writes_total");
  return counter;
}
Counter& StoreEvictionsTotal() {
  static Counter& counter =
      MetricsRegistry::Global().GetCounter("kplex_store_evictions_total");
  return counter;
}
Counter& StoreCorruptEntriesTotal() {
  static Counter& counter = MetricsRegistry::Global().GetCounter(
      "kplex_store_corrupt_entries_total");
  return counter;
}
Gauge& StoreBytesGauge() {
  static Gauge& gauge =
      MetricsRegistry::Global().GetGauge("kplex_store_bytes");
  return gauge;
}
Histogram& StoreReadSeconds() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "kplex_stage_store_read_seconds");
  return histogram;
}
Histogram& StoreWriteSeconds() {
  static Histogram& histogram = MetricsRegistry::Global().GetHistogram(
      "kplex_stage_store_write_seconds");
  return histogram;
}

// FNV-1a, the same constants the snapshot section checksums use — one
// hash family across every durable artifact in the tree.
constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t Fnv1a(uint64_t hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

// ------------------------------------------------------------ file formats

constexpr char kEntryMagic[8] = {'k', 'p', 'x', 's', 't', 'o', 'r', 'e'};
constexpr char kIndexMagic[8] = {'k', 'p', 'x', 's', 'i', 'd', 'x', '1'};
constexpr uint32_t kFormatVersion = 1;
// Written in native order; readers on a different-endian host see the
// tag byte-swapped and refuse the file instead of misreading it.
constexpr uint32_t kByteOrderTag = 0x01020304u;

struct EntryHeader {
  char magic[8];
  uint32_t version;
  uint32_t byte_order;
  uint64_t payload_bytes;
  uint64_t payload_checksum;  // FNV-1a over the payload block
};
static_assert(sizeof(EntryHeader) == 32, "entry header layout drifted");

struct IndexHeader {
  char magic[8];
  uint32_t version;
  uint32_t byte_order;
  uint64_t entry_count;
  uint64_t access_clock;
  uint64_t rows_checksum;  // FNV-1a over the row block
};
static_assert(sizeof(IndexHeader) == 40, "index header layout drifted");

struct IndexRow {
  uint64_t key_hash;
  uint64_t bytes;
  uint64_t last_access;
};
static_assert(sizeof(IndexRow) == 24, "index row layout drifted");

constexpr uint8_t kFlagReductionPrecomputed = 1u << 0;
constexpr uint8_t kFlagHasBodies = 1u << 1;

// ------------------------------------------------- payload (de)serializers

void AppendBytes(std::vector<unsigned char>& out, const void* data,
                 std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  out.insert(out.end(), p, p + bytes);
}

void AppendU32(std::vector<unsigned char>& out, uint32_t v) {
  AppendBytes(out, &v, sizeof(v));
}

void AppendU64(std::vector<unsigned char>& out, uint64_t v) {
  AppendBytes(out, &v, sizeof(v));
}

void AppendVarint(std::vector<unsigned char>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<unsigned char>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<unsigned char>(v));
}

// Bounds-checked cursor over a read-only byte range; every Read returns
// false instead of walking off the end, so a truncated or bit-flipped
// payload can only ever produce a refusal.
class ByteReader {
 public:
  ByteReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ReadBytes(void* out, std::size_t bytes) {
    if (size_ - pos_ < bytes) return false;
    std::memcpy(out, data_ + pos_, bytes);
    pos_ += bytes;
    return true;
  }

  bool ReadU32(uint32_t& out) { return ReadBytes(&out, sizeof(out)); }
  bool ReadU64(uint64_t& out) { return ReadBytes(&out, sizeof(out)); }

  bool ReadVarint(uint64_t& out) {
    out = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (pos_ >= size_) return false;
      const unsigned char byte = data_[pos_++];
      out |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        // Reject non-canonical overlong encodings of the top chunk.
        return shift < 63 || byte <= 1;
      }
    }
    return false;
  }

  bool ReadString(std::string& out, std::size_t bytes) {
    if (size_ - pos_ < bytes) return false;
    out.assign(reinterpret_cast<const char*>(data_ + pos_), bytes);
    pos_ += bytes;
    return true;
  }

  bool AtEnd() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::vector<unsigned char> SerializePayload(const StoreKey& key,
                                            const StoredResult& result) {
  std::vector<unsigned char> payload;
  AppendU64(payload, key.graph_hash);
  AppendU32(payload, static_cast<uint32_t>(key.signature.size()));
  AppendBytes(payload, key.signature.data(), key.signature.size());
  AppendU64(payload, result.num_plexes);
  AppendU64(payload, result.max_plex_size);
  AppendU64(payload, result.fingerprint);
  AppendU64(payload, result.fingerprint_xor);
  AppendU64(payload, result.total_seeds);
  uint64_t seconds_bits = 0;
  static_assert(sizeof(result.compute_seconds) == sizeof(seconds_bits));
  std::memcpy(&seconds_bits, &result.compute_seconds, sizeof(seconds_bits));
  AppendU64(payload, seconds_bits);
  uint8_t flags = 0;
  if (result.reduction_precomputed) flags |= kFlagReductionPrecomputed;
  if (result.plexes != nullptr) flags |= kFlagHasBodies;
  payload.push_back(flags);
  if (result.plexes != nullptr) {
    // The body block: plex count, then per plex its size followed by
    // the vertex ids, all LEB128 varints. List order is preserved
    // exactly (sequential emission order is what cursors paginate).
    AppendVarint(payload, result.plexes->size());
    for (const auto& plex : *result.plexes) {
      AppendVarint(payload, plex.size());
      for (VertexId v : plex) AppendVarint(payload, v);
    }
  }
  return payload;
}

/// Decodes a payload block; returns false on any bounds/consistency
/// violation (the caller treats that as corruption).
bool ParsePayload(const unsigned char* data, std::size_t size,
                  StoreKey& key, StoredResult& result) {
  ByteReader reader(data, size);
  uint32_t signature_size = 0;
  if (!reader.ReadU64(key.graph_hash)) return false;
  if (!reader.ReadU32(signature_size)) return false;
  if (!reader.ReadString(key.signature, signature_size)) return false;
  uint64_t seconds_bits = 0;
  if (!reader.ReadU64(result.num_plexes)) return false;
  if (!reader.ReadU64(result.max_plex_size)) return false;
  if (!reader.ReadU64(result.fingerprint)) return false;
  if (!reader.ReadU64(result.fingerprint_xor)) return false;
  if (!reader.ReadU64(result.total_seeds)) return false;
  if (!reader.ReadU64(seconds_bits)) return false;
  std::memcpy(&result.compute_seconds, &seconds_bits, sizeof(seconds_bits));
  uint8_t flags = 0;
  if (!reader.ReadBytes(&flags, sizeof(flags))) return false;
  if ((flags & ~(kFlagReductionPrecomputed | kFlagHasBodies)) != 0) {
    return false;
  }
  result.reduction_precomputed = (flags & kFlagReductionPrecomputed) != 0;
  if ((flags & kFlagHasBodies) != 0) {
    uint64_t count = 0;
    if (!reader.ReadVarint(count)) return false;
    // Each plex needs at least 1 byte of size prefix: an impossible
    // count is refused before any allocation happens.
    if (count > reader.remaining()) return false;
    std::vector<std::vector<VertexId>> bodies;
    bodies.reserve(static_cast<std::size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t plex_size = 0;
      if (!reader.ReadVarint(plex_size)) return false;
      if (plex_size > reader.remaining()) return false;
      std::vector<VertexId> plex;
      plex.reserve(static_cast<std::size_t>(plex_size));
      for (uint64_t j = 0; j < plex_size; ++j) {
        uint64_t v = 0;
        if (!reader.ReadVarint(v)) return false;
        if (v > UINT32_MAX) return false;
        plex.push_back(static_cast<VertexId>(v));
      }
      bodies.push_back(std::move(plex));
    }
    result.plexes =
        std::make_shared<const std::vector<std::vector<VertexId>>>(
            std::move(bodies));
  } else {
    result.plexes = nullptr;
  }
  return reader.AtEnd();
}

// ----------------------------------------------------------- durable writes

#if defined(__unix__) || defined(__APPLE__)
void SyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}
#else
void SyncDirectory(const std::string&) {}
#endif

/// The hardened temp-file idiom: write `path + ".tmp"`, flush, fsync,
/// rename, fsync the directory. The two hooks simulate crashes at the
/// marked points by abandoning the operation — the tmp file is left on
/// disk exactly as a dying process would leave it.
Status WriteDurable(
    const std::string& path, const std::string& dir, const void* data,
    std::size_t bytes,
    const std::function<bool(const std::string&)>& before_flush,
    const std::function<bool(const std::string&)>& before_rename) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create '" + tmp + "'");
  }
  if (bytes > 0 && std::fwrite(data, 1, bytes, file) != bytes) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return Status::IoError("short write to '" + tmp + "'");
  }
  if (before_flush && !before_flush(tmp)) {
    std::fclose(file);  // tmp stays behind, possibly torn — like a crash
    return Status::Aborted("simulated crash before flush of '" + tmp + "'");
  }
  if (std::fflush(file) != 0) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return Status::IoError("cannot flush '" + tmp + "'");
  }
#if defined(__unix__) || defined(__APPLE__)
  if (::fsync(::fileno(file)) != 0) {
    std::fclose(file);
    std::remove(tmp.c_str());
    return Status::IoError("cannot fsync '" + tmp + "'");
  }
#endif
  std::fclose(file);
  if (before_rename && !before_rename(tmp)) {
    return Status::Aborted("simulated crash before rename of '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename '" + tmp + "' into place");
  }
  SyncDirectory(dir);
  return Status::Ok();
}

/// Reads a whole file: mmap'ed when the platform supports it (the
/// zero-copy warm-hit path), buffered otherwise. The mapping handle
/// keeps the bytes alive for the view's lifetime.
struct FileBytes {
  std::shared_ptr<const MappedFile> mapping;  // null on the buffered path
  std::vector<unsigned char> buffer;
  const unsigned char* data = nullptr;
  std::size_t size = 0;
};

bool ReadFileBytes(const std::string& path, FileBytes& out) {
  auto mapped = MappedFile::Open(path);
  if (mapped.ok()) {
    out.mapping = *mapped;
    out.data = out.mapping != nullptr
                   ? static_cast<const unsigned char*>(out.mapping->data())
                   : nullptr;
    out.size = out.mapping != nullptr ? out.mapping->size() : 0;
    return true;
  }
  if (mapped.status().code() != StatusCode::kUnimplemented) return false;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  std::fseek(file, 0, SEEK_END);
  const long length = std::ftell(file);
  if (length < 0) {
    std::fclose(file);
    return false;
  }
  std::fseek(file, 0, SEEK_SET);
  out.buffer.resize(static_cast<std::size_t>(length));
  const std::size_t read =
      length > 0 ? std::fread(out.buffer.data(), 1, out.buffer.size(), file)
                 : 0;
  std::fclose(file);
  if (read != out.buffer.size()) return false;
  out.data = out.buffer.data();
  out.size = out.buffer.size();
  return true;
}

/// "<16 hex digits>" of a key hash, or nullopt for foreign filenames.
std::optional<uint64_t> ParseEntryFileName(const std::string& name) {
  constexpr std::size_t kHexDigits = 16;
  const std::string suffix = ".kpr";
  if (name.size() != kHexDigits + suffix.size()) return std::nullopt;
  if (name.compare(kHexDigits, suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  uint64_t hash = 0;
  for (std::size_t i = 0; i < kHexDigits; ++i) {
    const char c = name[i];
    hash <<= 4;
    if (c >= '0' && c <= '9') {
      hash |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      hash |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return hash;
}

}  // namespace

uint64_t ResultStore::KeyHash(const StoreKey& key) {
  uint64_t hash = Fnv1a(kFnvBasis, &key.graph_hash, sizeof(key.graph_hash));
  return Fnv1a(hash, key.signature.data(), key.signature.size());
}

std::string ResultStore::EntryFileName(uint64_t key_hash) {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.kpr",
                static_cast<unsigned long long>(key_hash));
  return name;
}

std::string ResultStore::EntryPath(uint64_t key_hash) const {
  return directory_ + "/" + EntryFileName(key_hash);
}

ResultStore::ResultStore(StoreOptions options)
    : directory_(options.directory), byte_budget_(options.byte_budget) {}

StatusOr<std::unique_ptr<ResultStore>> ResultStore::Open(
    StoreOptions options) {
  if (options.directory.empty()) {
    return Status::InvalidArgument("result store directory must not be empty");
  }
  std::unique_ptr<ResultStore> store(new ResultStore(std::move(options)));
  Status recovered = store->Recover();
  if (!recovered.ok()) return recovered;
  return store;
}

Status ResultStore::Recover() {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec || !fs::is_directory(directory_, ec)) {
    return Status::IoError("cannot create store directory '" + directory_ +
                           "'");
  }

  std::lock_guard<std::mutex> lock(mutex_);
  std::map<uint64_t, IndexEntry> persisted;
  uint64_t persisted_clock = 0;
  const bool index_valid = LoadIndex(persisted, persisted_clock);

  // Reconcile the index against what is actually durable: the directory
  // scan is the source of truth, the index only contributes the LRU
  // stamps it remembered. Orphaned tmp files (crash mid-write) are
  // removed — a tmp was never promoted, so it is never trusted.
  bool drifted = !index_valid;
  std::map<uint64_t, IndexEntry> reconciled;
  uint64_t total = 0;
  for (const auto& dirent : fs::directory_iterator(directory_, ec)) {
    const std::string name = dirent.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove(dirent.path(), ec);
      drifted = true;
      continue;
    }
    const std::optional<uint64_t> hash = ParseEntryFileName(name);
    if (!hash.has_value()) continue;  // store.idx, *.bad, foreign files
    const uint64_t size = fs::file_size(dirent.path(), ec);
    if (ec) continue;
    IndexEntry entry;
    entry.bytes = size;
    auto it = persisted.find(*hash);
    if (it != persisted.end()) {
      entry.last_access = it->second.last_access;
      if (it->second.bytes != size) drifted = true;
    } else {
      drifted = true;  // durable entry a crash left unindexed
    }
    persisted_clock = std::max(persisted_clock, entry.last_access);
    total += size;
    reconciled.emplace(*hash, entry);
  }
  if (reconciled.size() != persisted.size()) drifted = true;

  index_ = std::move(reconciled);
  total_bytes_ = total;
  access_clock_ = persisted_clock + 1;
  EvictOverBudget(0);
  if (drifted) (void)RewriteIndex();  // best-effort; scan repairs again
  PublishBytesGauge();
  return Status::Ok();
}

bool ResultStore::LoadIndex(std::map<uint64_t, IndexEntry>& loaded,
                            uint64_t& clock) {
  FileBytes bytes;
  if (!ReadFileBytes(directory_ + "/store.idx", bytes)) return false;
  if (bytes.size < sizeof(IndexHeader)) return false;
  IndexHeader header;
  std::memcpy(&header, bytes.data, sizeof(header));
  if (std::memcmp(header.magic, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    return false;
  }
  if (header.version != kFormatVersion) return false;
  if (header.byte_order != kByteOrderTag) return false;
  const std::size_t row_bytes = bytes.size - sizeof(IndexHeader);
  if (row_bytes % sizeof(IndexRow) != 0) return false;
  if (header.entry_count != row_bytes / sizeof(IndexRow)) return false;
  const unsigned char* rows = bytes.data + sizeof(IndexHeader);
  if (Fnv1a(kFnvBasis, rows, row_bytes) != header.rows_checksum) return false;
  for (uint64_t i = 0; i < header.entry_count; ++i) {
    IndexRow row;
    std::memcpy(&row, rows + i * sizeof(IndexRow), sizeof(row));
    loaded[row.key_hash] = IndexEntry{row.bytes, row.last_access};
  }
  clock = header.access_clock;
  return true;
}

Status ResultStore::RewriteIndex() {
  std::vector<unsigned char> blob(sizeof(IndexHeader));
  for (const auto& [hash, entry] : index_) {
    IndexRow row{hash, entry.bytes, entry.last_access};
    AppendBytes(blob, &row, sizeof(row));
  }
  IndexHeader header{};
  std::memcpy(header.magic, kIndexMagic, sizeof(kIndexMagic));
  header.version = kFormatVersion;
  header.byte_order = kByteOrderTag;
  header.entry_count = index_.size();
  header.access_clock = access_clock_;
  header.rows_checksum = Fnv1a(kFnvBasis, blob.data() + sizeof(IndexHeader),
                               blob.size() - sizeof(IndexHeader));
  std::memcpy(blob.data(), &header, sizeof(header));
  return WriteDurable(directory_ + "/store.idx", directory_, blob.data(),
                      blob.size(), nullptr, hooks_.before_index_rename);
}

std::optional<StoredResult> ResultStore::ReadEntry(uint64_t key_hash,
                                                   const StoreKey* key) {
  FileBytes bytes;
  if (!ReadFileBytes(EntryPath(key_hash), bytes)) return std::nullopt;
  bool corrupt = true;
  StoreKey stored_key;
  StoredResult result;
  do {
    if (bytes.size < sizeof(EntryHeader)) break;
    EntryHeader header;
    std::memcpy(&header, bytes.data, sizeof(header));
    if (std::memcmp(header.magic, kEntryMagic, sizeof(kEntryMagic)) != 0) {
      break;
    }
    if (header.version != kFormatVersion) break;
    if (header.byte_order != kByteOrderTag) break;
    const unsigned char* payload = bytes.data + sizeof(EntryHeader);
    const std::size_t payload_size = bytes.size - sizeof(EntryHeader);
    if (header.payload_bytes != payload_size) break;
    if (Fnv1a(kFnvBasis, payload, payload_size) != header.payload_checksum) {
      break;
    }
    if (!ParsePayload(payload, payload_size, stored_key, result)) break;
    corrupt = false;
  } while (false);
  if (corrupt) {
    Quarantine(key_hash);
    return std::nullopt;
  }
  if (key != nullptr && (stored_key.graph_hash != key->graph_hash ||
                         stored_key.signature != key->signature)) {
    // A valid entry for a different key: the filename hash collided (or
    // the caller probed a stale name). Not corruption — just a miss.
    return std::nullopt;
  }
  return result;
}

void ResultStore::Quarantine(uint64_t key_hash) {
  const std::string path = EntryPath(key_hash);
  std::error_code ec;
  fs::rename(path, path + ".bad", ec);
  if (ec) fs::remove(path, ec);
  auto it = index_.find(key_hash);
  if (it != index_.end()) {
    total_bytes_ -= std::min(total_bytes_, it->second.bytes);
    index_.erase(it);
    (void)RewriteIndex();
    PublishBytesGauge();
  }
  ++corrupt_;
  StoreCorruptEntriesTotal().Increment();
}

std::optional<StoredResult> ResultStore::Get(const StoreKey& key) {
  WallTimer timer;
  const uint64_t key_hash = KeyHash(key);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key_hash);
  if (it == index_.end()) {
    // Probe the directory anyway: under a shared store directory
    // another process may have persisted this key after we opened
    // (last-writer-wins sharing, see the class comment).
    std::error_code ec;
    const uint64_t size = fs::file_size(EntryPath(key_hash), ec);
    if (ec) {
      ++misses_;
      StoreMissesTotal().Increment();
      return std::nullopt;
    }
    it = index_.emplace(key_hash, IndexEntry{size, 0}).first;
    total_bytes_ += size;
  }
  std::optional<StoredResult> result = ReadEntry(key_hash, &key);
  if (!result.has_value()) {
    ++misses_;
    StoreMissesTotal().Increment();
    return std::nullopt;
  }
  it = index_.find(key_hash);
  if (it != index_.end()) it->second.last_access = ++access_clock_;
  ++hits_;
  StoreHitsTotal().Increment();
  StoreReadSeconds().Observe(timer.ElapsedSeconds());
  return result;
}

Status ResultStore::Put(const StoreKey& key, const StoredResult& result) {
  WallTimer timer;
  const uint64_t key_hash = KeyHash(key);
  const std::vector<unsigned char> payload = SerializePayload(key, result);
  EntryHeader header{};
  std::memcpy(header.magic, kEntryMagic, sizeof(kEntryMagic));
  header.version = kFormatVersion;
  header.byte_order = kByteOrderTag;
  header.payload_bytes = payload.size();
  header.payload_checksum = Fnv1a(kFnvBasis, payload.data(), payload.size());
  std::vector<unsigned char> blob;
  blob.reserve(sizeof(header) + payload.size());
  AppendBytes(blob, &header, sizeof(header));
  AppendBytes(blob, payload.data(), payload.size());

  std::lock_guard<std::mutex> lock(mutex_);
  Status written =
      WriteDurable(EntryPath(key_hash), directory_, blob.data(), blob.size(),
                   hooks_.before_entry_flush, hooks_.before_entry_rename);
  if (!written.ok()) return written;
  auto it = index_.find(key_hash);
  if (it != index_.end()) {
    total_bytes_ -= std::min(total_bytes_, it->second.bytes);
  }
  index_[key_hash] = IndexEntry{blob.size(), ++access_clock_};
  total_bytes_ += blob.size();
  ++writes_;
  StoreWritesTotal().Increment();
  EvictOverBudget(key_hash);
  PublishBytesGauge();
  Status indexed = RewriteIndex();
  StoreWriteSeconds().Observe(timer.ElapsedSeconds());
  // An index-rewrite failure leaves the entry durable and the on-disk
  // index stale — the state a crash mid-index-rewrite produces, which
  // the next Open repairs. Surface it so tests can assert the path.
  return indexed;
}

void ResultStore::EvictOverBudget(uint64_t keep) {
  if (byte_budget_ == 0) return;
  while (total_bytes_ > byte_budget_ && index_.size() > 1) {
    auto victim = index_.end();
    for (auto it = index_.begin(); it != index_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == index_.end() ||
          it->second.last_access < victim->second.last_access) {
        victim = it;
      }
    }
    if (victim == index_.end()) break;
    std::error_code ec;
    fs::remove(EntryPath(victim->first), ec);
    total_bytes_ -= std::min(total_bytes_, victim->second.bytes);
    index_.erase(victim);
    ++evictions_;
    StoreEvictionsTotal().Increment();
  }
}

ResultStore::EvictOutcome ResultStore::EvictAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  EvictOutcome outcome;
  outcome.entries = index_.size();
  outcome.bytes = total_bytes_;
  for (const auto& [hash, entry] : index_) {
    std::error_code ec;
    fs::remove(EntryPath(hash), ec);
    ++evictions_;
    StoreEvictionsTotal().Increment();
  }
  index_.clear();
  total_bytes_ = 0;
  (void)RewriteIndex();
  PublishBytesGauge();
  return outcome;
}

ResultStore::Stats ResultStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.entries = index_.size();
  stats.bytes = total_bytes_;
  stats.byte_budget = byte_budget_;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.writes = writes_;
  stats.evictions = evictions_;
  stats.corrupt_entries = corrupt_;
  return stats;
}

void ResultStore::SetHooksForTest(StoreHooks hooks) {
  std::lock_guard<std::mutex> lock(mutex_);
  hooks_ = std::move(hooks);
}

void ResultStore::PublishBytesGauge() {
  StoreBytesGauge().Set(static_cast<int64_t>(total_bytes_));
}

}  // namespace kplex
