// ResultStore: the durable warm tier of the query service. Completed
// QueryEngine results are persisted to a directory keyed by
// (graph content hash, canonical query signature) — the same key pair
// the shard admission check already proved survives re-snapshots — so a
// restarted process answers repeat queries without re-enumerating.
//
// On-disk layout (docs/RESULT_STORE.md has the full format reference):
//
//   <dir>/<keyhash16>.kpr   one entry per key: a versioned fixed header
//                           (magic, version, byte-order tag, payload
//                           length, FNV-1a payload checksum) followed by
//                           the payload — the full key (graph hash +
//                           signature, verified on read so a filename
//                           hash collision can never serve wrong data),
//                           the result summary (count, max size,
//                           fingerprint halves, seed count, compute
//                           seconds), and, when the run collected plex
//                           bodies, the body list as a compact varint
//                           block.
//   <dir>/store.idx         the entry index: key hash, byte size, and
//                           LRU access stamp per entry, checksummed and
//                           rewritten atomically after every mutation.
//                           Purely an accelerator — Open() reconciles it
//                           against a directory scan, so a stale or
//                           corrupt index rebuilds from the entries.
//   <dir>/*.tmp             in-progress writes; never trusted, removed
//                           on Open (the crash model below).
//   <dir>/*.bad             quarantined entries that failed validation;
//                           kept for post-mortems, never read again.
//
// Crash model: every write (entry or index) goes through the snapshot
// writer's temp-file idiom hardened with fsync — write `path + ".tmp"`,
// flush, fsync, rename. A crash at any point leaves either the old
// state or the new state, never a torn file a reader could trust: a
// leftover tmp is discarded on reopen, a durable entry missing from the
// index is re-adopted by the reconciling scan, and any file that fails
// magic/version/length/checksum validation is quarantined (renamed to
// `.bad`), counted in kplex_store_corrupt_entries_total, and treated as
// a miss so the caller recomputes.
//
// Concurrency: one instance is fully thread-safe (a single mutex guards
// the index and serializes IO — entries are small). Across processes
// the store is coordinated by last-writer-wins atomic renames rather
// than a lock file: concurrent writers of the same key race benignly
// (both wrote the same complete answer; whichever rename lands last
// wins and readers only ever observe a whole entry), and Get() probes
// the directory on an in-memory index miss so one process serves
// entries another process persisted after this one opened. The index
// file is per-writer best-effort under sharing — reconciliation on the
// next Open repairs any interleaving. See docs/RESULT_STORE.md.
//
// Eviction: an optional byte budget bounds the summed entry bytes.
// When a Put pushes the store over budget, least-recently-used entries
// are deleted until it fits (the entry just written survives even if it
// alone exceeds the budget — an oversized store beats a useless one).

#ifndef KPLEX_STORE_RESULT_STORE_H_
#define KPLEX_STORE_RESULT_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace kplex {

/// Injectable fault points for the crash-safety battery
/// (tests/result_store_test.cc). Each hook fires immediately before the
/// named step of a write; returning false simulates the process dying
/// there — the operation is abandoned with Status::Aborted, leaving the
/// disk exactly as a real crash would (partial tmp, unrenamed tmp, or
/// durable entry with a stale index). Production code never sets these.
struct StoreHooks {
  /// Before the entry tmp is flushed+fsynced (data may be torn).
  std::function<bool(const std::string& tmp_path)> before_entry_flush;
  /// After the entry tmp is durable, before its rename.
  std::function<bool(const std::string& tmp_path)> before_entry_rename;
  /// After the index tmp is durable, before its rename (the entry
  /// itself is already promoted — the on-disk index is now stale).
  std::function<bool(const std::string& tmp_path)> before_index_rename;
};

struct StoreOptions {
  /// Directory holding the entries and store.idx; created if missing.
  std::string directory;
  /// LRU byte budget over the summed entry file sizes (0 = unlimited).
  uint64_t byte_budget = 0;
};

/// The identity of a stored result: the graph's content bytes (so a
/// re-snapshotted or reloaded graph can never ride a stale entry) plus
/// the canonical query signature (every parameter that determines the
/// result set, including the precompute tag).
struct StoreKey {
  uint64_t graph_hash = 0;
  std::string signature;
};

/// The persisted slice of a QueryResult — exactly the fields that are a
/// property of the *answer* rather than of the run that produced it
/// (timings excepted: compute_seconds is kept so a warm hit can still
/// report what the original enumeration cost).
struct StoredResult {
  uint64_t num_plexes = 0;
  uint64_t max_plex_size = 0;
  uint64_t fingerprint = 0;
  uint64_t fingerprint_xor = 0;
  uint64_t total_seeds = 0;
  double compute_seconds = 0;
  bool reduction_precomputed = false;
  /// The plex bodies, present iff the original request collected them
  /// (the signature carries |bodies=on / |top= / |mode=maximum, so only
  /// body-carrying entries ever serve body requests). Null otherwise.
  std::shared_ptr<const std::vector<std::vector<VertexId>>> plexes;
};

class ResultStore {
 public:
  /// Opens (creating if needed) the store at `options.directory`: loads
  /// store.idx, reconciles it against a directory scan (adopting
  /// durable entries a crash left unindexed, dropping rows whose file
  /// vanished), removes orphaned tmp files, and evicts down to the
  /// budget. A corrupt or missing index is rebuilt from the scan.
  static StatusOr<std::unique_ptr<ResultStore>> Open(StoreOptions options);

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Looks up one key: returns the stored result on a durable, valid
  /// hit; nullopt on a miss. Entries failing validation (bad magic /
  /// version / length / checksum, or a filename-hash collision whose
  /// embedded key mismatches) are never served; validation failures are
  /// quarantined and counted. Reads are served from an mmap of the
  /// entry file when the platform supports it (buffered read fallback).
  std::optional<StoredResult> Get(const StoreKey& key);

  /// Persists one key/result crash-safely (tmp + fsync + rename) and
  /// rewrites the index. Overwrites an existing entry for the key
  /// (last writer wins). Evicts LRU entries while over budget.
  Status Put(const StoreKey& key, const StoredResult& result);

  struct Stats {
    std::size_t entries = 0;
    uint64_t bytes = 0;
    uint64_t byte_budget = 0;  ///< 0 = unlimited
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writes = 0;
    uint64_t evictions = 0;
    uint64_t corrupt_entries = 0;
  };
  Stats stats() const;

  /// Deletes every entry (the `store evict` verb); returns what was
  /// freed. The directory and index stay valid (and empty).
  struct EvictOutcome {
    uint64_t entries = 0;
    uint64_t bytes = 0;
  };
  EvictOutcome EvictAll();

  const std::string& directory() const { return directory_; }
  uint64_t byte_budget() const { return byte_budget_; }

  /// Installs the crash-simulation hooks (tests only).
  void SetHooksForTest(StoreHooks hooks);

  /// The filename-deriving hash of a key: FNV-1a over the graph hash
  /// bytes then the signature bytes. Exposed for the tests and the
  /// smoke script, which locate entry files to corrupt them.
  static uint64_t KeyHash(const StoreKey& key);

  /// "<keyhash16>.kpr" — the entry file name for a key hash.
  static std::string EntryFileName(uint64_t key_hash);

 private:
  struct IndexEntry {
    uint64_t bytes = 0;
    uint64_t last_access = 0;  // LRU stamp from access_clock_
  };

  explicit ResultStore(StoreOptions options);

  std::string EntryPath(uint64_t key_hash) const;
  /// Validates + decodes one entry file; increments the corrupt counter
  /// and quarantines on validation failure. `key` null skips the
  /// embedded-key comparison (Open-time adoption).
  std::optional<StoredResult> ReadEntry(uint64_t key_hash,
                                        const StoreKey* key);
  /// Renames a failed entry to `.bad` and drops it from the index.
  void Quarantine(uint64_t key_hash);
  /// Deletes LRU entries while over budget (never `keep`).
  void EvictOverBudget(uint64_t keep);
  /// Atomically rewrites store.idx from the in-memory index. Honors the
  /// before_index_rename hook. Best-effort: a failure leaves the
  /// on-disk index stale, which the next Open repairs by scanning.
  Status RewriteIndex();
  /// Loads store.idx (returns false on any validation failure) into
  /// `loaded` + `clock`.
  bool LoadIndex(std::map<uint64_t, IndexEntry>& loaded, uint64_t& clock);
  /// Directory scan + index reconciliation run by Open.
  Status Recover();
  void PublishBytesGauge();

  const std::string directory_;
  const uint64_t byte_budget_;

  mutable std::mutex mutex_;
  std::map<uint64_t, IndexEntry> index_;
  uint64_t total_bytes_ = 0;
  uint64_t access_clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t writes_ = 0;
  uint64_t evictions_ = 0;
  uint64_t corrupt_ = 0;
  StoreHooks hooks_;
};

}  // namespace kplex

#endif  // KPLEX_STORE_RESULT_STORE_H_
